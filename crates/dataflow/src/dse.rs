//! Design-space-exploration (DSE) substrate — the paper's motivation made
//! executable.
//!
//! Section II-B argues that exhaustive DSE over loop orders and tiling
//! sizes is intractable (≈7.2×10¹³ points for two loop levels of one layer,
//! citing ref. \[29\]) and that heuristics find sub-optimal points without
//! explaining *why* a dataflow is good. This module provides:
//!
//! * [`search_space_size`] — the size of the two-level loop-order × tiling
//!   space for a layer, reproducing the intractability argument;
//! * [`random_dse`] — a budgeted random-sampling DSE baseline over the same
//!   space the paper's dataflow occupies (output tilings), which the tests
//!   show converges to — never beats — the closed-form choice.

use comm_bound::OnChipMemory;
use conv_model::ConvLayer;

use crate::search::search_ours;
use crate::tiling::{our_dataflow_traffic, Tiling};
use crate::traffic::DramTraffic;

/// Number of distinct two-level tilings × loop orders for a layer: each of
/// the seven loops of Fig. 2 can be tiled at two levels (any divisor-free
/// size in `1..=dim` each) and the loops at each level permuted.
///
/// Returned as `f64` because the count overflows `u64` for real layers —
/// that is the point.
#[must_use]
pub fn search_space_size(layer: &ConvLayer) -> f64 {
    let dims = [
        layer.batch(),
        layer.out_channels(),
        layer.output_height(),
        layer.output_width(),
        layer.in_channels(),
        layer.kernel_height(),
        layer.kernel_width(),
    ];
    // Tiling choices: one inner tile size per dimension at each of the two
    // levels (sizes 1..=dim, inner <= outer): dim*(dim+1)/2 combinations.
    let tilings: f64 = dims
        .iter()
        .map(|&d| (d as f64) * (d as f64 + 1.0) / 2.0)
        .product();
    // Loop orders: 7! permutations at each level.
    let orders = 5040.0 * 5040.0;
    tilings * orders
}

/// Result of a random-sampling DSE run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DseOutcome {
    /// Samples drawn.
    pub samples: u64,
    /// Samples that satisfied the on-chip memory constraint.
    pub feasible: u64,
    /// Best tiling found.
    pub best_tiling: Tiling,
    /// Its DRAM traffic.
    pub best_traffic: DramTraffic,
}

/// Budgeted random-sampling DSE over the output-tiling space of the paper's
/// dataflow, with a deterministic xorshift generator (`seed`).
///
/// This is the "heuristic search" a DSE tool would run when the space is too
/// large to enumerate. Compare its best against
/// [`search_ours`] / [`paper_tiling`](crate::paper_tiling):
/// with a small budget it is clearly worse; even with a large budget it can
/// only approach the theory-guided choice.
#[must_use]
pub fn random_dse(layer: &ConvLayer, mem: OnChipMemory, samples: u64, seed: u64) -> DseOutcome {
    let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
    let mut next = move |bound: usize| -> usize {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        (state >> 33) as usize % bound.max(1) + 1
    };

    let mut feasible = 0u64;
    let mut best: Option<(u64, Tiling)> = None;
    for _ in 0..samples {
        let t = Tiling {
            b: next(layer.batch()),
            z: next(layer.out_channels()),
            y: next(layer.output_height()),
            x: next(layer.output_width()),
        };
        if !t.fits(layer, mem) {
            continue;
        }
        feasible += 1;
        let q = our_dataflow_traffic(layer, &t).total_words();
        match best {
            Some((bq, _)) if bq <= q => {}
            _ => best = Some((q, t)),
        }
    }
    let (_, best_tiling) = best.unwrap_or((
        u64::MAX,
        Tiling {
            b: 1,
            z: 1,
            y: 1,
            x: 1,
        },
    ));
    DseOutcome {
        samples,
        feasible,
        best_tiling,
        best_traffic: our_dataflow_traffic(layer, &best_tiling),
    }
}

/// Convenience: the ratio `random-DSE best / theory-guided best` for a given
/// sample budget (≥ 1.0 by construction; → 1.0 as the budget grows).
#[must_use]
pub fn dse_gap(layer: &ConvLayer, mem: OnChipMemory, samples: u64, seed: u64) -> f64 {
    let dse = random_dse(layer, mem, samples, seed);
    let ours = search_ours(layer, mem);
    dse.best_traffic.total_words() as f64 / ours.traffic.total_words() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn search_space_is_astronomical() {
        // The paper quotes 7.2e13 for two loops of one layer; the full
        // seven-loop two-level space is far larger still.
        let size = search_space_size(&layer());
        assert!(size > 1e13, "search space {size:e} should be intractable");
    }

    #[test]
    fn search_space_grows_with_layer() {
        let small = ConvLayer::square(1, 8, 8, 4, 3, 1).unwrap();
        assert!(search_space_size(&small) < search_space_size(&layer()));
    }

    #[test]
    fn dse_never_beats_theory() {
        let mem = OnChipMemory::from_kib(66.5);
        for seed in [1u64, 7, 42] {
            let gap = dse_gap(&layer(), mem, 2_000, seed);
            assert!(gap >= 1.0 - 1e-12, "DSE beat the exhaustive search: {gap}");
        }
    }

    #[test]
    fn small_budget_dse_is_clearly_worse() {
        // With a handful of samples the random search lands far from the
        // optimum — the paper's point about heuristic DSE.
        let mem = OnChipMemory::from_kib(66.5);
        let gap = dse_gap(&layer(), mem, 10, 3);
        assert!(
            gap > 1.02,
            "tiny-budget DSE should be visibly worse, got {gap}"
        );
    }

    #[test]
    fn dse_converges_with_budget() {
        let mem = OnChipMemory::from_kib(66.5);
        let small = dse_gap(&layer(), mem, 50, 11);
        let large = dse_gap(&layer(), mem, 20_000, 11);
        assert!(large <= small + 1e-12);
        assert!(large < 1.25, "large-budget DSE should approach the optimum");
    }

    #[test]
    fn dse_deterministic_per_seed() {
        let mem = OnChipMemory::from_kib(66.5);
        let a = random_dse(&layer(), mem, 500, 9);
        let b = random_dse(&layer(), mem, 500, 9);
        assert_eq!(a.best_tiling, b.best_tiling);
        assert_eq!(a.feasible, b.feasible);
    }
}
