//! The paper's communication-optimal dataflow (Section IV-A, Fig. 6/7).
//!
//! A tiling `{b, z, y, x}` partitions the output images into
//! `b×z×y×x` sub-matrices. Each sub-matrix's partial sums stay on chip while
//! the needed inputs and weights stream from DRAM exactly once, `k = 1` input
//! channel at a time. The DRAM traffic follows Eq. 14; choosing
//! `b·x·y ≈ R·z` and `b·x·y·z ≈ S` reaches the Eq. 15 lower bound.

use comm_bound::OnChipMemory;
use conv_model::ConvLayer;
use serde::{Deserialize, Serialize};

use crate::traffic::DramTraffic;

/// Output tiling `{b, z, y, x}` of the paper's dataflow (Fig. 7).
///
/// `b` images × `z` output channels × `y` output rows × `x` output columns
/// of partial sums are kept on chip per block; the inner iteration streams
/// `k = 1` input channel at a time (the paper shows `k` should always be the
/// smallest value).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Tiling {
    /// Images per block (`b ≤ B`).
    pub b: usize,
    /// Output channels per block (`z ≤ Co`).
    pub z: usize,
    /// Output rows per block (`y ≤ Ho`).
    pub y: usize,
    /// Output columns per block (`x ≤ Wo`).
    pub x: usize,
}

impl Tiling {
    /// Creates a tiling, clamping each size into `1..=dim`.
    #[must_use]
    pub fn clamped(layer: &ConvLayer, b: usize, z: usize, y: usize, x: usize) -> Self {
        Tiling {
            b: b.clamp(1, layer.batch()),
            z: z.clamp(1, layer.out_channels()),
            y: y.clamp(1, layer.output_height()),
            x: x.clamp(1, layer.output_width()),
        }
    }

    /// Partial sums resident on chip per block: `u·z = b·x·y·z` words.
    #[must_use]
    pub fn psum_words(&self) -> u64 {
        self.b as u64 * self.z as u64 * self.y as u64 * self.x as u64
    }

    /// The `u = b·x·y` side of the output block in the converted MM view.
    #[must_use]
    pub fn u(&self) -> u64 {
        self.b as u64 * self.x as u64 * self.y as u64
    }

    /// On-chip words needed by the dataflow with this tiling at `k = 1`:
    /// Psums (`b·x·y·z`) + one channel of inputs (`b·x'·y'`) + one channel of
    /// `z` kernels' weights (`z·Wk·Hk`).
    #[must_use]
    pub fn onchip_words(&self, layer: &ConvLayer) -> u64 {
        let (xp, yp) = layer.input_footprint(self.x, self.y);
        self.psum_words()
            + self.b as u64 * xp as u64 * yp as u64
            + self.z as u64 * layer.kernel_height() as u64 * layer.kernel_width() as u64
    }

    /// True when the tiling fits in `mem` effective on-chip words.
    #[must_use]
    pub fn fits(&self, layer: &ConvLayer, mem: OnChipMemory) -> bool {
        self.onchip_words(layer) as f64 <= mem.words()
    }

    /// Checks that every dimension is usable for blocking `layer`: nonzero
    /// (a zero tile size would make the Fig. 7 block grid empty along that
    /// axis and never advance) and no larger than the corresponding output
    /// dimension (an oversized tile silently behaves like the clamped one,
    /// which is almost always a caller bug).
    ///
    /// The fields are `pub` and [`Deserialize`], so tilings can arrive from
    /// untrusted JSON; every `simulate`/API boundary validates through this
    /// before walking the block grid.
    ///
    /// # Errors
    ///
    /// Returns a description of the first violated constraint.
    pub fn validate_for(&self, layer: &ConvLayer) -> Result<(), String> {
        let axes = [
            ("b", self.b, layer.batch(), "batch"),
            ("z", self.z, layer.out_channels(), "output channels"),
            ("y", self.y, layer.output_height(), "output height"),
            ("x", self.x, layer.output_width(), "output width"),
        ];
        for (name, value, dim, what) in axes {
            if value == 0 {
                return Err(format!("tiling dimension {name} must be nonzero"));
            }
            if value > dim {
                return Err(format!(
                    "tiling dimension {name}={value} exceeds the layer's {what} {dim}"
                ));
            }
        }
        Ok(())
    }
}

impl std::fmt::Display for Tiling {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{{b={}, z={}, y={}, x={}}}",
            self.b, self.z, self.y, self.x
        )
    }
}

/// Sum over tile starts of the *input* extent each output tile of size
/// `tile` needs along one axis, accounting for halos, stride, padding and
/// image-boundary clipping (padding zeros are never fetched from DRAM).
pub(crate) fn summed_input_extent(
    out_dim: usize,
    tile: usize,
    stride: usize,
    kernel: usize,
    pad: usize,
    in_dim: usize,
) -> u64 {
    let mut sum = 0u64;
    let mut start = 0usize;
    while start < out_dim {
        let len = tile.min(out_dim - start);
        let lo = (start * stride) as isize - pad as isize;
        let hi = ((start + len - 1) * stride + kernel - 1) as isize - pad as isize;
        let lo = lo.max(0);
        let hi = hi.min(in_dim as isize - 1);
        if hi >= lo {
            sum += (hi - lo + 1) as u64;
        }
        start += tile;
    }
    sum
}

/// Number of tiles along one axis.
pub(crate) fn tile_count(dim: usize, tile: usize) -> u64 {
    dim.div_ceil(tile) as u64
}

/// Exact DRAM traffic of the paper's dataflow (Eq. 14) for a given tiling,
/// including boundary-tile effects.
///
/// For every output block, `Wk·Hk·Ci·z'` weights and `b'·x''·y''·Ci` inputs
/// are read exactly once (`'` marks boundary-clamped tile sizes, `''` the
/// halo extents clipped to the image), and the `b'·z'·x'·y'` outputs are
/// written exactly once at the end.
#[must_use]
pub fn our_dataflow_traffic(layer: &ConvLayer, tiling: &Tiling) -> DramTraffic {
    let ci = layer.in_channels() as u64;
    let kh = layer.kernel_height() as u64;
    let kw = layer.kernel_width() as u64;

    let nb = tile_count(layer.batch(), tiling.b);
    let nz = tile_count(layer.out_channels(), tiling.z);
    let ny = tile_count(layer.output_height(), tiling.y);
    let nx = tile_count(layer.output_width(), tiling.x);

    // Weights: each (z-block) × (spatial & batch block) reads Wk·Hk·Ci·z'.
    // Σ z' over z-blocks = Co.
    let weight_reads = kw * kh * ci * layer.out_channels() as u64 * nb * ny * nx;

    // Inputs: per block b'·x''·y''·Ci; separable over axes.
    let sum_b: u64 = {
        let mut s = 0u64;
        let mut start = 0usize;
        while start < layer.batch() {
            s += tiling.b.min(layer.batch() - start) as u64;
            start += tiling.b;
        }
        s
    };
    let sum_x = summed_input_extent(
        layer.output_width(),
        tiling.x,
        layer.stride(),
        layer.kernel_width(),
        layer.padding().horizontal,
        layer.in_width(),
    );
    let sum_y = summed_input_extent(
        layer.output_height(),
        tiling.y,
        layer.stride(),
        layer.kernel_height(),
        layer.padding().vertical,
        layer.in_height(),
    );
    let input_reads = sum_b * sum_x * sum_y * ci * nz;

    DramTraffic {
        input_reads,
        weight_reads,
        output_reads: 0,
        output_writes: layer.output_words(),
    }
}

/// Closed-form tiling choice from the paper's two optimality conditions
/// (Section IV-C): `b·x·y ≈ R·z` and `b·x·y·z ≈ S`.
///
/// Solves `u = √(S·R)`, `z = √(S/R)`, distributes `u` over `{b, y, x}`
/// greedily (whole images first, then square-ish spatial tiles), then shrinks
/// until the `k = 1` working set fits. This is the constructive "our
/// dataflow" configuration; [`plan_tiling`](crate::search::plan_tiling)
/// additionally polishes it with a local search.
#[must_use]
pub fn paper_tiling(layer: &ConvLayer, mem: OnChipMemory) -> Tiling {
    let s = mem.words();
    let r = layer.window_reuse();
    let u_target = (s * r).sqrt();
    let z_target = (s / r).sqrt();

    // Candidate grid around the closed-form targets: the optimality
    // conditions are approximate (halos and the k=1 slices consume part of
    // S), so a small local sweep recovers the constant factor.
    let plane = (layer.output_height() * layer.output_width()) as f64;
    let b_hint = ((u_target / plane).floor() as usize).clamp(1, layer.batch());

    // The local sweep evaluates ~hundreds of tilings; the axis tables turn
    // each fit check and traffic count into lookups instead of re-walking
    // the halo sums (`our_dataflow_traffic`) per candidate. The tables
    // compute the same integers — the engine pins the parity — so the
    // chosen tiling is unchanged.
    let tables = crate::engine::LayerTables::new(layer);
    let factors = [0.5, 0.62, 0.75, 0.85, 0.95, 1.0, 1.1];
    let mut best: Option<(u64, Tiling)> = None;
    for b in 1..=layer.batch().min(b_hint + 1) {
        let side = (u_target / b as f64).sqrt();
        for fy in factors {
            for fx in factors {
                for fz in factors {
                    let t = Tiling::clamped(
                        layer,
                        b,
                        (z_target * fz).round() as usize,
                        (side * fy).round() as usize,
                        (side * fx).round() as usize,
                    );
                    if tables.ours_onchip(&t) as f64 > mem.words() {
                        continue;
                    }
                    let q = tables.ours_traffic(&t).total_words();
                    match best {
                        Some((bq, _)) if bq <= q => {}
                        _ => best = Some((q, t)),
                    }
                }
            }
        }
    }
    best.map(|(_, t)| t)
        .unwrap_or_else(|| Tiling::clamped(layer, 1, 1, 1, 1))
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn layer() -> ConvLayer {
        workloads::vgg16(3).layer(4).unwrap().layer // conv3_1
    }

    #[test]
    fn untiled_layer_reads_everything_once() {
        // Tile = whole layer -> inputs and weights read exactly once.
        let l = layer();
        let t = Tiling::clamped(
            &l,
            l.batch(),
            l.out_channels(),
            l.output_height(),
            l.output_width(),
        );
        let traffic = our_dataflow_traffic(&l, &t);
        assert_eq!(traffic.weight_reads, l.weight_words());
        assert_eq!(traffic.input_reads, l.input_words());
        assert_eq!(traffic.output_writes, l.output_words());
        assert_eq!(traffic.output_reads, 0);
    }

    #[test]
    fn channel_tiling_multiplies_input_reads() {
        let l = layer();
        let full = Tiling::clamped(
            &l,
            l.batch(),
            l.out_channels(),
            l.output_height(),
            l.output_width(),
        );
        let halved = Tiling {
            z: l.out_channels() / 2,
            ..full
        };
        let t_full = our_dataflow_traffic(&l, &full);
        let t_half = our_dataflow_traffic(&l, &halved);
        assert_eq!(t_half.input_reads, 2 * t_full.input_reads);
        assert_eq!(t_half.weight_reads, t_full.weight_reads);
    }

    #[test]
    fn spatial_tiling_multiplies_weight_reads() {
        let l = layer();
        let full = Tiling::clamped(
            &l,
            l.batch(),
            l.out_channels(),
            l.output_height(),
            l.output_width(),
        );
        let split = Tiling {
            x: l.output_width() / 2,
            ..full
        };
        let t_full = our_dataflow_traffic(&l, &full);
        let t_split = our_dataflow_traffic(&l, &split);
        assert_eq!(t_split.weight_reads, 2 * t_full.weight_reads);
        // Inputs grow only by the halo columns.
        assert!(t_split.input_reads > t_full.input_reads);
        assert!(t_split.input_reads < t_full.input_reads * 11 / 10);
    }

    #[test]
    fn summed_extent_no_tiling_covers_input_once() {
        // One tile covering everything: needs the whole (clipped) input.
        let n = summed_input_extent(56, 56, 1, 3, 1, 56);
        assert_eq!(n, 56);
    }

    #[test]
    fn summed_extent_counts_halos() {
        // 56 outputs in tiles of 8, kernel 3, stride 1, no padding, input 58:
        // each of 7 tiles needs 10 columns.
        let n = summed_input_extent(56, 8, 1, 3, 0, 58);
        assert_eq!(n, 70);
    }

    #[test]
    fn summed_extent_clips_padding() {
        // Same but with pad=1 and input 56: first tile starts at -1 (clipped),
        // last tile ends at 57 (clipped), so 2 columns less in total.
        let n = summed_input_extent(56, 8, 1, 3, 1, 56);
        assert_eq!(n, 68);
    }

    #[test]
    fn summed_extent_strided() {
        // 4 outputs, tile 2, stride 2, kernel 3, no pad, input 9:
        // tile 0 covers in[0..=4] (5), tile 1 covers in[4..=8] (5).
        let n = summed_input_extent(4, 2, 2, 3, 0, 9);
        assert_eq!(n, 10);
    }

    #[test]
    fn paper_tiling_respects_memory() {
        let l = layer();
        for kib in [16.0, 66.5, 128.0, 256.0] {
            let mem = OnChipMemory::from_kib(kib);
            let t = paper_tiling(&l, mem);
            assert!(t.fits(&l, mem), "tiling {t} does not fit in {kib} KiB");
        }
    }

    #[test]
    fn paper_tiling_balances_u_and_rz() {
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let t = paper_tiling(&l, mem);
        let ratio = t.u() as f64 / (l.window_reuse() * t.z as f64);
        assert!(
            (0.4..2.5).contains(&ratio),
            "u should approximate R*z, got ratio {ratio} for {t}"
        );
    }

    #[test]
    fn paper_tiling_near_lower_bound() {
        // The constructed tiling's traffic should be within ~35% of Eq. 15.
        let l = layer();
        let mem = OnChipMemory::from_kib(66.5);
        let t = paper_tiling(&l, mem);
        let q = our_dataflow_traffic(&l, &t).total_words() as f64;
        let bound = comm_bound::practical_dram_words(&l, mem);
        assert!(
            q >= bound * 0.95,
            "traffic below the lower bound?! q={q} bound={bound}"
        );
        assert!(
            q <= bound * 1.35,
            "too far above bound: q={q} bound={bound}"
        );
    }

    #[test]
    fn onchip_words_accounts_for_halo() {
        let l = layer();
        let t = Tiling::clamped(&l, 1, 16, 8, 8);
        let (xp, yp) = l.input_footprint(8, 8);
        assert_eq!(
            t.onchip_words(&l),
            (16 * 8 * 8) + (xp as u64 * yp as u64) + 16 * 9
        );
    }

    #[test]
    fn validate_for_accepts_clamped_tilings() {
        let l = layer();
        for (b, z, y, x) in [(1, 1, 1, 1), (9, 999, 999, 999), (2, 16, 8, 8)] {
            Tiling::clamped(&l, b, z, y, x).validate_for(&l).unwrap();
        }
        let full = Tiling::clamped(
            &l,
            l.batch(),
            l.out_channels(),
            l.output_height(),
            l.output_width(),
        );
        full.validate_for(&l).unwrap();
    }

    #[test]
    fn validate_for_rejects_zero_and_oversized() {
        let l = layer();
        let ok = Tiling::clamped(&l, 1, 8, 8, 8);
        for (bad, needle) in [
            (Tiling { b: 0, ..ok }, "b must be nonzero"),
            (Tiling { z: 0, ..ok }, "z must be nonzero"),
            (Tiling { y: 0, ..ok }, "y must be nonzero"),
            (Tiling { x: 0, ..ok }, "x must be nonzero"),
            (
                Tiling {
                    b: l.batch() + 1,
                    ..ok
                },
                "exceeds",
            ),
            (
                Tiling {
                    z: l.out_channels() + 1,
                    ..ok
                },
                "exceeds",
            ),
            (
                Tiling {
                    y: l.output_height() * 2,
                    ..ok
                },
                "exceeds",
            ),
            (
                Tiling {
                    x: usize::MAX,
                    ..ok
                },
                "exceeds",
            ),
        ] {
            let msg = bad.validate_for(&l).unwrap_err();
            assert!(msg.contains(needle), "{bad}: {msg}");
        }
    }

    #[test]
    fn display_mentions_all_fields() {
        let t = Tiling {
            b: 1,
            z: 2,
            y: 3,
            x: 4,
        };
        assert_eq!(t.to_string(), "{b=1, z=2, y=3, x=4}");
    }
}
