//! A bounded least-recently-used map, the eviction policy behind the
//! search-engine memo cache and the service layer's response cache.
//!
//! The implementation is an intrusive doubly-linked list threaded through a
//! slot vector, with a [`HashMap`] from key to slot index: `get`, `insert`
//! and eviction are all `O(1)` (amortized, ignoring hashing). No external
//! crates, no unsafe — links are plain `usize` indices with [`NIL`] as the
//! null sentinel.

use std::collections::HashMap;
use std::hash::Hash;

/// Null link sentinel.
const NIL: usize = usize::MAX;

#[derive(Debug, Clone)]
struct Slot<K, V> {
    key: K,
    value: V,
    /// Toward the most-recently-used end.
    prev: usize,
    /// Toward the least-recently-used end.
    next: usize,
}

/// A map bounded to `capacity` entries that evicts the least-recently-used
/// entry on overflow. Both `get` and `insert` count as a "use".
#[derive(Debug, Clone)]
pub struct LruCache<K, V> {
    map: HashMap<K, usize>,
    slots: Vec<Slot<K, V>>,
    /// Most-recently-used slot (NIL when empty).
    head: usize,
    /// Least-recently-used slot (NIL when empty).
    tail: usize,
    /// Recycled slot indices.
    free: Vec<usize>,
    capacity: usize,
    evictions: u64,
}

impl<K: Eq + Hash + Clone, V> LruCache<K, V> {
    /// Creates a cache bounded to `capacity` entries (clamped to ≥ 1).
    #[must_use]
    pub fn new(capacity: usize) -> Self {
        LruCache {
            map: HashMap::new(),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: Vec::new(),
            capacity: capacity.max(1),
            evictions: 0,
        }
    }

    /// Number of resident entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True when no entries are resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// The eviction bound.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Entries evicted (not replaced or explicitly cleared) so far.
    #[must_use]
    pub fn evictions(&self) -> u64 {
        self.evictions
    }

    /// Looks up `key`, marking the entry as most recently used.
    pub fn get(&mut self, key: &K) -> Option<&V> {
        let &i = self.map.get(key)?;
        self.touch(i);
        Some(&self.slots[i].value)
    }

    /// Inserts or replaces `key`, marking it most recently used; evicts the
    /// least-recently-used entry when the cache is full.
    pub fn insert(&mut self, key: K, value: V) {
        if let Some(&i) = self.map.get(&key) {
            self.slots[i].value = value;
            self.touch(i);
            return;
        }
        if self.map.len() >= self.capacity {
            self.evict_tail();
        }
        let slot = Slot {
            key: key.clone(),
            value,
            prev: NIL,
            next: self.head,
        };
        let i = match self.free.pop() {
            Some(i) => {
                self.slots[i] = slot;
                i
            }
            None => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
        };
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
        self.map.insert(key, i);
    }

    /// Lowers (or raises) the eviction bound, evicting LRU entries until the
    /// cache fits. Capacity is clamped to ≥ 1.
    pub fn set_capacity(&mut self, capacity: usize) {
        self.capacity = capacity.max(1);
        while self.map.len() > self.capacity {
            self.evict_tail();
        }
    }

    /// Drops every entry and resets the eviction counter. Capacity is kept.
    pub fn clear(&mut self) {
        self.map.clear();
        self.slots.clear();
        self.free.clear();
        self.head = NIL;
        self.tail = NIL;
        self.evictions = 0;
    }

    /// Unlinks slot `i` and re-links it at the head (most recently used).
    fn touch(&mut self, i: usize) {
        if self.head == i {
            return;
        }
        self.unlink(i);
        self.slots[i].prev = NIL;
        self.slots[i].next = self.head;
        if self.head != NIL {
            self.slots[self.head].prev = i;
        }
        self.head = i;
        if self.tail == NIL {
            self.tail = i;
        }
    }

    /// Removes slot `i` from the linked list (leaves the slot itself alone).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slots[i].prev, self.slots[i].next);
        if prev != NIL {
            self.slots[prev].next = next;
        } else {
            self.head = next;
        }
        if next != NIL {
            self.slots[next].prev = prev;
        } else {
            self.tail = prev;
        }
    }

    /// Evicts the least-recently-used entry.
    fn evict_tail(&mut self) {
        let i = self.tail;
        if i == NIL {
            return;
        }
        self.unlink(i);
        self.map.remove(&self.slots[i].key);
        self.free.push(i);
        self.evictions += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn evicts_least_recently_used() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("c", 3); // evicts "a"
        assert_eq!(c.get(&"a"), None);
        assert_eq!(c.get(&"b"), Some(&2));
        assert_eq!(c.get(&"c"), Some(&3));
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 1);
    }

    #[test]
    fn get_refreshes_recency() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.get(&"a"), Some(&1)); // "b" is now LRU
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.get(&"a"), Some(&1));
        assert_eq!(c.get(&"b"), None);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn insert_replaces_and_refreshes() {
        let mut c = LruCache::new(2);
        c.insert("a", 1);
        c.insert("b", 2);
        c.insert("a", 10); // replace, no eviction; "b" is LRU
        assert_eq!(c.evictions(), 0);
        c.insert("c", 3); // evicts "b"
        assert_eq!(c.get(&"a"), Some(&10));
        assert_eq!(c.get(&"b"), None);
    }

    #[test]
    fn shrinking_capacity_evicts() {
        let mut c = LruCache::new(4);
        for (i, k) in ["a", "b", "c", "d"].into_iter().enumerate() {
            c.insert(k, i);
        }
        c.set_capacity(2);
        assert_eq!(c.len(), 2);
        assert_eq!(c.evictions(), 2);
        // The two most recently used survive.
        assert_eq!(c.get(&"c"), Some(&2));
        assert_eq!(c.get(&"d"), Some(&3));
    }

    #[test]
    fn clear_resets_entries_and_counter() {
        let mut c = LruCache::new(1);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.evictions(), 1);
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.evictions(), 0);
        assert_eq!(c.capacity(), 1);
        c.insert("c", 3);
        assert_eq!(c.get(&"c"), Some(&3));
    }

    #[test]
    fn capacity_clamps_to_one() {
        let mut c = LruCache::new(0);
        assert_eq!(c.capacity(), 1);
        c.insert("a", 1);
        c.insert("b", 2);
        assert_eq!(c.len(), 1);
        c.set_capacity(0);
        assert_eq!(c.capacity(), 1);
    }

    #[test]
    fn heavy_churn_stays_bounded() {
        let mut c = LruCache::new(8);
        for i in 0..1000u32 {
            c.insert(i, i * 2);
            assert!(c.len() <= 8);
        }
        assert_eq!(c.evictions(), 1000 - 8);
        for i in 992..1000 {
            assert_eq!(c.get(&i), Some(&(i * 2)));
        }
    }
}
