//! In-flight request coalescing ("singleflight"): concurrent callers asking
//! for the same key share one computation instead of running N copies.
//!
//! The search engine uses a [`FlightMap`] so that a burst of identical
//! cache-missing searches (the "millions of users ask about VGG-16" case)
//! runs the expensive sweep once; the analysis service reuses the same type
//! to coalesce whole HTTP requests. The computation must be deterministic —
//! every caller receives a clone of the leader's result.

use std::collections::HashMap;
use std::hash::Hash;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};

#[derive(Debug)]
enum FlightState<V> {
    /// The leader is still computing.
    Pending,
    /// The leader finished; followers clone this.
    Done(V),
    /// The leader panicked; followers compute for themselves.
    Abandoned,
}

#[derive(Debug)]
struct Flight<V> {
    state: Mutex<FlightState<V>>,
    done: Condvar,
}

/// Marks the flight [`FlightState::Abandoned`] if the leader unwinds before
/// publishing a result, so followers never block forever.
struct AbandonGuard<'a, K: Eq + Hash, V> {
    map: &'a FlightMap<K, V>,
    key: Option<K>,
    flight: &'a Flight<V>,
}

impl<K: Eq + Hash, V> Drop for AbandonGuard<'_, K, V> {
    fn drop(&mut self) {
        if let Some(key) = self.key.take() {
            if let Ok(mut inflight) = self.map.inflight.lock() {
                inflight.remove(&key);
            }
            if let Ok(mut state) = self.flight.state.lock() {
                *state = FlightState::Abandoned;
            }
            self.flight.done.notify_all();
        }
    }
}

/// A map of in-flight computations keyed by request identity.
///
/// [`FlightMap::run`] is the only entry point: the first caller for a key
/// becomes the *leader* and runs the closure; callers arriving while the
/// leader is still computing become *followers* and block until the leader
/// publishes, then receive a clone of the result. The map only tracks
/// in-flight work — results are not retained after the last follower leaves
/// (pair with a cache, e.g. [`LruCache`](crate::lru::LruCache), for reuse
/// across non-overlapping requests).
#[derive(Debug, Default)]
pub struct FlightMap<K, V> {
    inflight: Mutex<HashMap<K, Arc<Flight<V>>>>,
    coalesced: AtomicU64,
    led: AtomicU64,
}

impl<K: Eq + Hash + Clone, V: Clone> FlightMap<K, V> {
    /// An empty flight map.
    #[must_use]
    pub fn new() -> Self {
        FlightMap {
            inflight: Mutex::new(HashMap::new()),
            coalesced: AtomicU64::new(0),
            led: AtomicU64::new(0),
        }
    }

    /// Computations that ran (leaders).
    #[must_use]
    pub fn led(&self) -> u64 {
        self.led.load(Ordering::Relaxed)
    }

    /// Calls that were answered by another caller's in-flight computation.
    #[must_use]
    pub fn coalesced(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Resets the `led`/`coalesced` counters (in-flight work is untouched).
    pub fn reset_stats(&self) {
        self.led.store(0, Ordering::Relaxed);
        self.coalesced.store(0, Ordering::Relaxed);
    }

    /// Runs `compute` for `key`, coalescing with any identical in-flight
    /// call. Returns the result and whether this call was coalesced (i.e.
    /// served by another caller's computation).
    pub fn run<F: FnOnce() -> V>(&self, key: K, compute: F) -> (V, bool) {
        let (flight, is_leader) = {
            let mut inflight = self.inflight.lock().expect("flight registry lock poisoned");
            match inflight.get(&key) {
                Some(existing) => (Arc::clone(existing), false),
                None => {
                    let flight = Arc::new(Flight {
                        state: Mutex::new(FlightState::Pending),
                        done: Condvar::new(),
                    });
                    inflight.insert(key.clone(), Arc::clone(&flight));
                    (flight, true)
                }
            }
        };
        if is_leader {
            // Compute outside every lock; the guard publishes `Abandoned`
            // if `compute` unwinds, so followers are never stranded.
            let mut guard = AbandonGuard {
                map: self,
                key: Some(key),
                flight: &flight,
            };
            let value = compute();
            let key = guard.key.take(); // defuse the guard
            drop(guard);
            if let Some(key) = key {
                self.inflight
                    .lock()
                    .expect("flight registry lock poisoned")
                    .remove(&key);
            }
            *flight.state.lock().expect("flight lock poisoned") = FlightState::Done(value.clone());
            flight.done.notify_all();
            self.led.fetch_add(1, Ordering::Relaxed);
            return (value, false);
        }
        // Follower: wait for the leader to publish.
        let mut state = flight.state.lock().expect("flight lock poisoned");
        while matches!(*state, FlightState::Pending) {
            state = flight
                .done
                .wait(state)
                .expect("flight lock poisoned while waiting");
        }
        match &*state {
            FlightState::Done(value) => {
                self.coalesced.fetch_add(1, Ordering::Relaxed);
                (value.clone(), true)
            }
            // The leader panicked; compute independently rather than
            // propagating its failure.
            FlightState::Abandoned => {
                drop(state);
                self.led.fetch_add(1, Ordering::Relaxed);
                (compute(), false)
            }
            FlightState::Pending => unreachable!("loop exits only when not pending"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicUsize;

    #[test]
    fn single_caller_computes() {
        let map: FlightMap<&str, u32> = FlightMap::new();
        let (v, coalesced) = map.run("k", || 42);
        assert_eq!(v, 42);
        assert!(!coalesced);
        assert_eq!(map.led(), 1);
        assert_eq!(map.coalesced(), 0);
    }

    #[test]
    fn sequential_calls_do_not_coalesce() {
        // The flight retires once the leader publishes; a later call for the
        // same key computes again (caching is a separate concern).
        let map: FlightMap<&str, u32> = FlightMap::new();
        map.run("k", || 1);
        let (v, coalesced) = map.run("k", || 2);
        assert_eq!(v, 2);
        assert!(!coalesced);
        assert_eq!(map.led(), 2);
    }

    #[test]
    fn concurrent_identical_calls_share_one_computation() {
        let map: FlightMap<u32, u64> = FlightMap::new();
        let computed = AtomicUsize::new(0);
        let gate = std::sync::Barrier::new(8);
        std::thread::scope(|scope| {
            for _ in 0..8 {
                scope.spawn(|| {
                    gate.wait();
                    let (v, _) = map.run(7, || {
                        computed.fetch_add(1, Ordering::Relaxed);
                        // Give followers time to pile onto the flight.
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        99
                    });
                    assert_eq!(v, 99);
                });
            }
        });
        // At least some callers must have been coalesced; every caller saw
        // the same value; leaders + coalesced account for every call.
        assert!(computed.load(Ordering::Relaxed) < 8, "some calls coalesced");
        assert_eq!(map.led() + map.coalesced(), 8);
        assert_eq!(map.led(), computed.load(Ordering::Relaxed) as u64);
    }

    #[test]
    fn distinct_keys_do_not_block_each_other() {
        let map: FlightMap<u32, u32> = FlightMap::new();
        std::thread::scope(|scope| {
            for k in 0..4 {
                let map = &map;
                scope.spawn(move || {
                    let (v, coalesced) = map.run(k, || k * 10);
                    assert_eq!(v, k * 10);
                    assert!(!coalesced);
                });
            }
        });
        assert_eq!(map.led(), 4);
        assert_eq!(map.coalesced(), 0);
    }

    #[test]
    fn leader_panic_does_not_strand_followers() {
        let map = Arc::new(FlightMap::<&'static str, u32>::new());
        let gate = Arc::new(std::sync::Barrier::new(2));
        let leader = {
            let (map, gate) = (Arc::clone(&map), Arc::clone(&gate));
            std::thread::spawn(move || {
                let _ = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    map.run("k", || {
                        gate.wait();
                        std::thread::sleep(std::time::Duration::from_millis(30));
                        panic!("leader dies");
                    });
                }));
            })
        };
        gate.wait(); // leader is inside its computation now
        let (v, coalesced) = map.run("k", || 5);
        assert_eq!(v, 5);
        assert!(!coalesced);
        leader.join().unwrap();
    }
}
