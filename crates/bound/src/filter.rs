//! Admissible per-candidate DRAM floors for staged design-space sweeps.
//!
//! A staged sweep wants to discard a candidate architecture *before*
//! planning and simulating it, which is only sound if the discarding bound
//! is **admissible**: never above what the candidate would actually
//! achieve. The Eq. 15 practical bound is not admissible against the
//! simulator (implementations land a few percent *under* it on some
//! layers), so this module derives its floors from the simulator's own
//! structural constraints instead:
//!
//! * a planned tiling always satisfies `z ≤ wgbuf_entries` (the WGBuf
//!   holds one weight row per output channel of the block) and
//!   `b · x' · y' ≤ igbuf_entries` (the halo-included input slab fits the
//!   IGBuf), where `(x', y')` is [`ConvLayer::input_footprint`];
//! * the DRAM words the simulator counts for that tiling are exactly the
//!   analytic per-term traffic of the paper's dataflow (Eq. 14).
//!
//! Minimizing each traffic term independently over the *relaxed* set
//! `{z ≤ wgbuf} × {b·x'·y' ≤ igbuf}` (a superset of any planner's feasible
//! set) therefore yields a word count no feasible execution on that
//! `(igbuf, wgbuf)` geometry can beat. The floors are exact minima of the
//! individual terms, computed in `O(Y log X)` per distinct buffer geometry
//! after `O(X + Y)` per-layer preprocessing, and cached per geometry by
//! [`FloorCache`] so sweeping 10⁵–10⁶ candidates costs hash lookups, not
//! halo sweeps.

use std::collections::HashMap;

use conv_model::ConvLayer;

/// An admissible lower bound on the DRAM traffic of any feasible execution
/// of one layer on a buffer geometry, split the way a staged sweep consumes
/// it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DramFloor {
    /// Floor on DRAM words *read* (inputs + weights) — the part that must
    /// cross the link before compute can retire, used by cycle floors.
    pub read_words: u64,
    /// Floor on total DRAM words (reads + the exact output write-back).
    pub total_words: u64,
    /// True when even the unit tile violates the IGBuf constraint: **no**
    /// tiling of this layer is feasible on the geometry, so every candidate
    /// sharing it fails with `InputTileTooLarge`.
    pub provably_infeasible: bool,
}

/// One axis of the halo relation, preprocessed for O(log n) floor queries:
/// tile sizes sorted by (strictly increasing) input footprint, with the
/// prefix minimum of the summed clipped input extent.
#[derive(Debug, Clone)]
struct AxisFloor {
    /// `footprints[i]` = input footprint of tile size `i + 1`.
    footprints: Vec<u64>,
    /// `sums[i]` = summed clipped input extent of tile size `i + 1` (the
    /// `sum_x`/`sum_y` factor of Eq. 14).
    sums: Vec<u64>,
    /// `prefix_min_sum[i]` = min of `sums[0..=i]`.
    prefix_min_sum: Vec<u64>,
}

impl AxisFloor {
    fn new(out_dim: usize, stride: usize, kernel: usize, pad: usize, in_dim: usize) -> Self {
        let mut footprints = Vec::with_capacity(out_dim);
        let mut sums = Vec::with_capacity(out_dim);
        let mut prefix_min_sum = Vec::with_capacity(out_dim);
        let mut running = u64::MAX;
        for tile in 1..=out_dim {
            footprints.push(((stride * (tile - 1)) as u64).saturating_add(kernel as u64));
            let sum = summed_clipped_extent(out_dim, tile, stride, kernel, pad, in_dim);
            sums.push(sum);
            running = running.min(sum);
            prefix_min_sum.push(running);
        }
        AxisFloor {
            footprints,
            sums,
            prefix_min_sum,
        }
    }

    /// Footprint of the unit tile (the kernel extent) — the least any block
    /// can occupy along this axis.
    fn unit_footprint(&self) -> u64 {
        self.footprints[0]
    }

    /// Largest tile size whose footprint is within `budget`, if any.
    fn max_tile_within(&self, budget: u64) -> Option<usize> {
        // partition_point: footprints are strictly increasing in tile size.
        let n = self.footprints.partition_point(|&f| f <= budget);
        (n > 0).then_some(n)
    }

    /// Minimum summed extent over tile sizes whose footprint is within
    /// `budget`, if any tile qualifies.
    fn min_sum_within(&self, budget: u64) -> Option<u64> {
        self.max_tile_within(budget)
            .map(|n| self.prefix_min_sum[n - 1])
    }
}

/// Sum over tile starts of the clipped input extent along one axis — the
/// `sum_x`/`sum_y` factor of the analytic Eq. 14 traffic (padding zeros are
/// never fetched). Mirrors the dataflow crate's summed extent exactly; the
/// dataflow crate's tests pin the two against each other.
fn summed_clipped_extent(
    out_dim: usize,
    tile: usize,
    stride: usize,
    kernel: usize,
    pad: usize,
    in_dim: usize,
) -> u64 {
    let mut sum = 0u64;
    let mut start = 0usize;
    while start < out_dim {
        let len = tile.min(out_dim - start);
        let lo = ((start * stride) as isize - pad as isize).max(0);
        let hi = (((start + len - 1) * stride + kernel - 1) as isize - pad as isize)
            .min(in_dim as isize - 1);
        if hi >= lo {
            sum += (hi - lo + 1) as u64;
        }
        start += tile;
    }
    sum
}

/// Per-layer preprocessing for [`DramFloor`] queries: axis tables plus the
/// layer constants of the Eq. 14 terms. Build once per layer, query once
/// per distinct buffer geometry.
#[derive(Debug, Clone)]
pub struct LayerFloor {
    batch: u64,
    out_channels: u64,
    in_channels: u64,
    taps: u64,
    output_words: u64,
    x: AxisFloor,
    y: AxisFloor,
    out_width: usize,
    out_height: usize,
}

impl LayerFloor {
    /// Preprocesses `layer` for floor queries (`O(X·nx + Y·ny)` — every
    /// tile size's summed extent along each axis).
    #[must_use]
    pub fn new(layer: &ConvLayer) -> Self {
        LayerFloor {
            batch: layer.batch() as u64,
            out_channels: layer.out_channels() as u64,
            in_channels: layer.in_channels() as u64,
            taps: (layer.kernel_height() * layer.kernel_width()) as u64,
            output_words: layer.output_words(),
            x: AxisFloor::new(
                layer.output_width(),
                layer.stride(),
                layer.kernel_width(),
                layer.padding().horizontal,
                layer.in_width(),
            ),
            y: AxisFloor::new(
                layer.output_height(),
                layer.stride(),
                layer.kernel_height(),
                layer.padding().vertical,
                layer.in_height(),
            ),
            out_width: layer.output_width(),
            out_height: layer.output_height(),
        }
    }

    /// The admissible DRAM floor of this layer on a buffer geometry of
    /// `igbuf_entries` input words and `wgbuf_entries` weight words.
    ///
    /// Each Eq. 14 term is minimized independently over the relaxed
    /// structural set (every feasible tiling satisfies both constraints):
    ///
    /// * inputs — `batch · Ci · ⌈Co/min(Co, wgbuf)⌉ · min{sum_x · sum_y}`
    ///   over `(tx, ty)` with `fx(tx)·fy(ty) ≤ igbuf` (taking `b = 1`,
    ///   which only weakens the constraint; the batch factor is `batch`
    ///   for every tiling);
    /// * weights — `taps · Ci · Co · ⌈B/b*⌉ · ⌈Y/ty*⌉ · ⌈X/tx*⌉` with each
    ///   starred size maximized independently under the IGBuf constraint
    ///   (the others at their unit footprint);
    /// * outputs — the exact `output_words` (written exactly once).
    ///
    /// Saturating arithmetic keeps hostile-but-valid giant layers on the
    /// admissible side (a saturated floor only ever under-states).
    #[must_use]
    pub fn floor(&self, igbuf_entries: usize, wgbuf_entries: usize) -> DramFloor {
        let igbuf = igbuf_entries as u64;
        let unit = self
            .x
            .unit_footprint()
            .saturating_mul(self.y.unit_footprint());
        if unit > igbuf {
            return DramFloor {
                read_words: 0,
                total_words: 0,
                provably_infeasible: true,
            };
        }

        // Input floor: exact min of sum_x(tx)·sum_y(ty) over pairs with
        // fx(tx)·fy(ty) ≤ igbuf. For each ty, the budget fx(tx) ≤ igbuf/fy
        // covers every affordable tx, and the prefix minimum of sum_x over
        // that range is achieved by one of them — so each product below is
        // attainable and every attainable pair is dominated by one of them.
        let mut min_plane = u64::MAX;
        for ty in 1..=self.out_height {
            let fy = self.y.footprints[ty - 1];
            if fy.saturating_mul(self.x.unit_footprint()) > igbuf {
                break; // footprints grow with ty: nothing larger fits
            }
            if let Some(sx) = self.x.min_sum_within(igbuf / fy) {
                min_plane = min_plane.min(sx.saturating_mul(self.y.sums[ty - 1]));
            }
        }
        let nz_floor = self
            .out_channels
            .div_ceil(self.out_channels.min((wgbuf_entries as u64).max(1)));
        let input_floor = if min_plane == u64::MAX {
            0 // unreachable given the unit-tile check, but stay conservative
        } else {
            self.batch
                .saturating_mul(self.in_channels)
                .saturating_mul(nz_floor)
                .saturating_mul(min_plane)
        };

        // Weight floor: fewest block visits, each axis maximized alone.
        let b_max = (igbuf / unit).clamp(1, self.batch);
        let budget_y = igbuf / self.x.unit_footprint();
        let ty_max = self.y.max_tile_within(budget_y).unwrap_or(1) as u64;
        let budget_x = igbuf / self.y.unit_footprint();
        let tx_max = self.x.max_tile_within(budget_x).unwrap_or(1) as u64;
        let weight_floor = self
            .taps
            .saturating_mul(self.in_channels)
            .saturating_mul(self.out_channels)
            .saturating_mul(self.batch.div_ceil(b_max))
            .saturating_mul((self.out_height as u64).div_ceil(ty_max))
            .saturating_mul((self.out_width as u64).div_ceil(tx_max));

        let read_words = input_floor.saturating_add(weight_floor);
        DramFloor {
            read_words,
            total_words: read_words.saturating_add(self.output_words),
            provably_infeasible: false,
        }
    }
}

/// Batched, cached floors over a whole workload: one [`LayerFloor`] per
/// layer, with per-geometry results memoized so a sweep over candidates
/// that share buffer sizes computes each halo minimization once.
#[derive(Debug)]
pub struct FloorCache {
    layers: Vec<LayerFloor>,
    memo: HashMap<(usize, usize), Vec<DramFloor>>,
}

impl FloorCache {
    /// Preprocesses every layer of a workload.
    #[must_use]
    pub fn new(layers: &[ConvLayer]) -> Self {
        FloorCache {
            layers: layers.iter().map(LayerFloor::new).collect(),
            memo: HashMap::new(),
        }
    }

    /// Per-layer floors for one buffer geometry, memoized.
    pub fn floors(&mut self, igbuf_entries: usize, wgbuf_entries: usize) -> &[DramFloor] {
        self.memo
            .entry((igbuf_entries, wgbuf_entries))
            .or_insert_with(|| {
                self.layers
                    .iter()
                    .map(|l| l.floor(igbuf_entries, wgbuf_entries))
                    .collect()
            })
    }

    /// Number of distinct geometries memoized so far.
    #[must_use]
    pub fn geometries(&self) -> usize {
        self.memo.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayer {
        // VGG-16 conv3_1 shape: 3×3 kernel, stride 1, pad 1.
        ConvLayer::square(3, 128, 56, 256, 3, 1).unwrap()
    }

    #[test]
    fn unit_tile_too_large_is_provably_infeasible() {
        let f = LayerFloor::new(&layer());
        // A 3×3 kernel needs at least 9 input words on chip.
        assert!(f.floor(8, 1 << 20).provably_infeasible);
        assert!(!f.floor(9, 1 << 20).provably_infeasible);
    }

    #[test]
    fn floors_shrink_as_buffers_grow() {
        let f = LayerFloor::new(&layer());
        let small = f.floor(1 << 10, 1 << 6);
        let large = f.floor(1 << 16, 1 << 12);
        assert!(!small.provably_infeasible);
        assert!(large.total_words <= small.total_words);
        assert!(large.read_words <= small.read_words);
        // The output term never shrinks below the exact write-back.
        assert!(large.total_words >= layer().output_words());
    }

    #[test]
    fn giant_buffers_reach_the_compulsory_floor() {
        let l = layer();
        let f = LayerFloor::new(&l);
        let floor = f.floor(1 << 30, 1 << 30);
        // With everything resident, inputs and weights are read once each
        // and outputs written once: the compulsory traffic.
        assert_eq!(
            floor.total_words,
            l.input_words() + l.weight_words() + l.output_words()
        );
    }

    #[test]
    fn summed_extent_matches_brute_force() {
        // 1-wide tiles with pad clip the borders; check one by hand:
        // out=4, tile=1, stride=2, kernel=3, pad=1, in=8.
        // starts 0..3: windows [-1..1]→[0,1], [1..3], [3..5], [5..7]
        // lens: 2,3,3,3 → 11.
        assert_eq!(summed_clipped_extent(4, 1, 2, 3, 1, 8), 11);
        // Full-output tile touches every input row exactly once.
        assert_eq!(summed_clipped_extent(4, 4, 2, 3, 1, 8), 8);
    }

    #[test]
    fn cache_memoizes_per_geometry() {
        let layers = vec![layer(), ConvLayer::square(3, 256, 28, 256, 3, 1).unwrap()];
        let mut cache = FloorCache::new(&layers);
        let a = cache.floors(1 << 12, 64).to_vec();
        let b = cache.floors(1 << 12, 64).to_vec();
        assert_eq!(a, b);
        assert_eq!(cache.geometries(), 1);
        cache.floors(1 << 13, 64);
        assert_eq!(cache.geometries(), 2);
        assert_eq!(a.len(), 2);
    }
}
