//! Three-level memory-hierarchy bounds (Section IV-C's summary).
//!
//! A CNN accelerator has at least three storage levels — DRAM, GBuf, Regs —
//! and the paper derives a lower bound at each boundary:
//!
//! | boundary | bound |
//! |---|---|
//! | DRAM ↔ chip | Eq. 15: `2·#MACs/√(R·S) + outputs` |
//! | GBuf ↔ Regs | input/weight DRAM reads (each loaded word read once) |
//! | Regs ↔ MACs | Eq. 16: `#MACs` writes |
//!
//! [`HierarchyBounds`] evaluates all three for a layer, and
//! [`HierarchyBounds::gaps`] compares them against measured volumes,
//! producing the per-level ratios the paper reports (DRAM ≈1.1×, GBuf
//! ≈1.3×, Regs ≈1.06–1.12×).

use conv_model::ConvLayer;
use serde::{Deserialize, Serialize};

use crate::{dram_bound_words, gbuf_bound_words, reg_bound_writes, OnChipMemory};

/// The three boundaries of the hierarchy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Level {
    /// Off-chip DRAM ↔ on-chip memory.
    Dram,
    /// GBuf ↔ register files.
    Gbuf,
    /// Registers ↔ MAC units.
    Reg,
}

impl Level {
    /// All levels, outermost first.
    pub const ALL: [Level; 3] = [Level::Dram, Level::Gbuf, Level::Reg];
}

impl std::fmt::Display for Level {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            Level::Dram => "DRAM",
            Level::Gbuf => "GBuf",
            Level::Reg => "Reg",
        })
    }
}

/// Lower bounds at every level of the hierarchy for one layer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyBounds {
    /// DRAM traffic bound in words (Eq. 15, ideal-clamped).
    pub dram_words: f64,
    /// GBuf read bound in words.
    pub gbuf_words: f64,
    /// Register write bound (Eq. 16).
    pub reg_writes: u64,
}

/// Measured traffic at every level, for gap computation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct MeasuredTraffic {
    /// Measured DRAM words (reads + writes).
    pub dram_words: u64,
    /// Measured GBuf read words.
    pub gbuf_read_words: u64,
    /// Measured register writes.
    pub reg_writes: u64,
}

/// Gap ratios `measured / bound` per level (≥ 1 when the bound holds).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HierarchyGaps {
    /// DRAM gap.
    pub dram: f64,
    /// GBuf gap.
    pub gbuf: f64,
    /// Register gap.
    pub reg: f64,
}

impl HierarchyGaps {
    /// The worst (largest) gap and its level.
    #[must_use]
    pub fn worst(&self) -> (Level, f64) {
        let mut worst = (Level::Dram, self.dram);
        if self.gbuf > worst.1 {
            worst = (Level::Gbuf, self.gbuf);
        }
        if self.reg > worst.1 {
            worst = (Level::Reg, self.reg);
        }
        worst
    }

    /// True when every measured volume is at or above its bound
    /// (tolerating floating-point slack).
    #[must_use]
    pub fn bounds_hold(&self) -> bool {
        self.dram >= 1.0 - 1e-9 && self.gbuf >= 1.0 - 1e-9 && self.reg >= 1.0 - 1e-9
    }
}

impl HierarchyBounds {
    /// Evaluates all three bounds for a layer at an effective on-chip
    /// memory size.
    #[must_use]
    pub fn of(layer: &ConvLayer, mem: OnChipMemory) -> Self {
        HierarchyBounds {
            dram_words: dram_bound_words(layer, mem),
            gbuf_words: gbuf_bound_words(layer, mem),
            reg_writes: reg_bound_writes(layer),
        }
    }

    /// Gap ratios of measured traffic against the bounds.
    #[must_use]
    pub fn gaps(&self, measured: &MeasuredTraffic) -> HierarchyGaps {
        HierarchyGaps {
            dram: measured.dram_words as f64 / self.dram_words,
            gbuf: measured.gbuf_read_words as f64 / self.gbuf_words,
            reg: measured.reg_writes as f64 / self.reg_writes as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn fixture() -> (HierarchyBounds, MeasuredTraffic) {
        let layer = workloads::vgg16(3).layer(4).unwrap().layer;
        let mem = OnChipMemory::from_kib(66.5);
        let bounds = HierarchyBounds::of(&layer, mem);
        let measured = MeasuredTraffic {
            dram_words: (bounds.dram_words * 1.15) as u64,
            gbuf_read_words: (bounds.gbuf_words * 1.3) as u64,
            reg_writes: bounds.reg_writes + bounds.reg_writes / 20,
        };
        (bounds, measured)
    }

    #[test]
    fn gaps_computed_per_level() {
        let (bounds, measured) = fixture();
        let gaps = bounds.gaps(&measured);
        assert!((gaps.dram - 1.15).abs() < 0.01);
        assert!((gaps.gbuf - 1.3).abs() < 0.01);
        assert!((gaps.reg - 1.05).abs() < 0.01);
        assert!(gaps.bounds_hold());
    }

    #[test]
    fn worst_level_identified() {
        let (bounds, measured) = fixture();
        let (level, gap) = bounds.gaps(&measured).worst();
        assert_eq!(level, Level::Gbuf);
        assert!((gap - 1.3).abs() < 0.01);
    }

    #[test]
    fn violated_bound_detected() {
        let (bounds, mut measured) = fixture();
        measured.reg_writes = bounds.reg_writes / 2;
        assert!(!bounds.gaps(&measured).bounds_hold());
    }

    #[test]
    fn levels_display() {
        let names: Vec<String> = Level::ALL.iter().map(ToString::to_string).collect();
        assert_eq!(names, vec!["DRAM", "GBuf", "Reg"]);
    }
}
