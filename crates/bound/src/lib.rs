//! Analytical communication lower bounds (Sections III and IV-C of the paper).
//!
//! The central results reproduced here:
//!
//! * **Theorem 2** (Eq. 13): with `S` words of effective on-chip memory, any
//!   execution of a convolutional layer moves at least
//!   `Ω(#MACs / √(R·S))` words between DRAM and the chip, where
//!   `R = Wk·Hk / D²` is the sliding-window reuse bound. See
//!   [`theorem2_dram_words`].
//! * **Practical bound** (Eq. 15): the tight, constant-bearing form used for
//!   every "Lower bound" curve in the paper's figures —
//!   `Q ≈ 2·#MACs / √(R·S) + |outputs|`. See [`practical_dram_words`].
//! * **GBuf bound** (Section IV-B1): the loaded inputs and weights can be
//!   read from the global buffer exactly once, so the minimum GBuf traffic
//!   equals the DRAM read traffic of inputs and weights. See
//!   [`gbuf_bound_words`].
//! * **Reg bound** (Eq. 16): every MAC writes one partial sum to a register,
//!   so the minimum register traffic is `#MACs` writes. See
//!   [`reg_bound_writes`].
//!
//! All quantities are in 16-bit *words*; multiply by
//! [`conv_model::BYTES_PER_WORD`] (or use the `_bytes` helpers) for the byte
//! volumes plotted in the paper.
//!
//! # Example
//!
//! ```
//! use comm_bound::{practical_dram_words, OnChipMemory};
//! use conv_model::ConvLayer;
//!
//! let layer = ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap();
//! let s = OnChipMemory::from_kib(66.5);
//! let words = practical_dram_words(&layer, s);
//! assert!(words > layer.output_words() as f64);
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

pub mod filter;
pub mod hierarchy;

pub use filter::{DramFloor, FloorCache, LayerFloor};
pub use hierarchy::{HierarchyBounds, HierarchyGaps, Level, MeasuredTraffic};

use conv_model::{ConvLayer, BYTES_PER_WORD};
use serde::{Deserialize, Serialize};

/// Effective on-chip memory capacity `S`, counted in 16-bit words.
///
/// The paper defines the *effective* on-chip memory as the maximum on-chip
/// storage holding no duplicated data (Section III). Figures sweep it in
/// kibibytes; the theory wants words. This newtype keeps the two straight.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct OnChipMemory {
    words: f64,
}

impl OnChipMemory {
    /// Capacity from a word count.
    ///
    /// # Panics
    ///
    /// Panics if `words` is not strictly positive.
    #[must_use]
    pub fn from_words(words: f64) -> Self {
        assert!(
            words > 0.0 && words.is_finite(),
            "on-chip memory must be positive, got {words}"
        );
        OnChipMemory { words }
    }

    /// Capacity from kibibytes at 16-bit precision (`1 KiB = 512 words`).
    ///
    /// # Panics
    ///
    /// Panics if `kib` is not strictly positive.
    #[must_use]
    pub fn from_kib(kib: f64) -> Self {
        OnChipMemory::from_words(kib * 1024.0 / BYTES_PER_WORD as f64)
    }

    /// Capacity in words.
    #[must_use]
    pub fn words(&self) -> f64 {
        self.words
    }

    /// Capacity in bytes.
    #[must_use]
    pub fn bytes(&self) -> f64 {
        self.words * BYTES_PER_WORD as f64
    }

    /// Capacity in kibibytes.
    #[must_use]
    pub fn kib(&self) -> f64 {
        self.bytes() / 1024.0
    }
}

impl std::fmt::Display for OnChipMemory {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}KiB", self.kib())
    }
}

/// Theorem 2 (Eq. 13): the asymptotic DRAM lower bound in words,
/// `#MACs / √(R·S)`.
///
/// This is the Ω-form: it captures the asymptotic relation between traffic
/// and on-chip capacity. For plottable, constant-bearing curves use
/// [`practical_dram_words`].
#[must_use]
pub fn theorem2_dram_words(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    layer.macs() as f64 / (layer.window_reuse() * mem.words()).sqrt()
}

/// The naive (no data reuse) communication volume the paper quotes as the
/// comparison point for Theorem 2: `2·#MACs` words — every MAC reads one
/// input and one weight from DRAM.
#[must_use]
pub fn naive_dram_words(layer: &ConvLayer) -> f64 {
    2.0 * layer.macs() as f64
}

/// The reduction factor `√(R·S)` by which Theorem 2 improves on the naive
/// volume. For `R = 1` (matrix multiplication) this is the classic
/// Hong–Kung `√S`.
#[must_use]
pub fn reduction_factor(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    (layer.window_reuse() * mem.words()).sqrt()
}

/// Practical DRAM lower bound (Eq. 15) in words:
/// `2·#MACs / √(R·S) + |outputs|`.
///
/// Derived by substituting the optimal tiling (`u·z ≈ S`, `u ≈ R·z`) into the
/// dataflow's traffic expression (Eq. 14): reads of inputs and weights are
/// balanced at `#MACs/√(R·S)` each, and every output is written exactly once.
/// This is the curve labelled "Lower bound" in Fig. 13–15 and Table III.
#[must_use]
pub fn practical_dram_words(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    2.0 * layer.macs() as f64 / (layer.window_reuse() * mem.words()).sqrt()
        + layer.output_words() as f64
}

/// [`practical_dram_words`] in bytes.
#[must_use]
pub fn practical_dram_bytes(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    practical_dram_words(layer, mem) * BYTES_PER_WORD as f64
}

/// The ideal (unbounded memory) volume: every input, weight and output moves
/// exactly once. No dataflow can beat this regardless of `S`.
#[must_use]
pub fn ideal_dram_words(layer: &ConvLayer) -> f64 {
    (layer.input_words() + layer.weight_words() + layer.output_words()) as f64
}

/// DRAM lower bound clamped from below by the ideal volume.
///
/// Eq. 15 can fall below the ideal volume when `S` is large enough to hold
/// all inputs or weights (the paper's "ideal case", handled separately in
/// Section III-B); the achievable bound is the max of the two.
#[must_use]
pub fn dram_bound_words(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    practical_dram_words(layer, mem).max(ideal_dram_words(layer))
}

/// [`dram_bound_words`] in bytes.
#[must_use]
pub fn dram_bound_bytes(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    dram_bound_words(layer, mem) * BYTES_PER_WORD as f64
}

/// Lower bound on GBuf traffic in words (Section IV-B1 / IV-C).
///
/// Within one iteration the PE array can consume each loaded input and
/// weight exactly once, so the minimum GBuf read volume equals the DRAM read
/// volume of inputs and weights — the first term of Eq. 15. (Psums never
/// touch the GBuf in the optimal mapping.) The same volume is written into
/// the GBuf from DRAM, so total traffic is twice the read volume; this
/// function returns the *read* volume, matching how the paper reports GBuf
/// access against its bound in Table IV.
#[must_use]
pub fn gbuf_bound_words(layer: &ConvLayer, mem: OnChipMemory) -> f64 {
    let input_weight_reads =
        2.0 * layer.macs() as f64 / (layer.window_reuse() * mem.words()).sqrt();
    input_weight_reads.max((layer.input_words() + layer.weight_words()) as f64)
}

/// Lower bound on register traffic (Eq. 16): one LReg write per MAC.
///
/// Partial sums live in PE-local registers and each multiply-accumulate
/// updates exactly one of them; no scheme can write fewer.
#[must_use]
pub fn reg_bound_writes(layer: &ConvLayer) -> u64 {
    layer.macs()
}

/// Breakdown of the practical DRAM bound into its three streams, in words.
///
/// The optimal tiling balances input and weight reads (`bxy ≈ R·z` makes the
/// two loading volumes equal — Section IV-A) and writes outputs once.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramBoundBreakdown {
    /// Input words read from DRAM.
    pub input_reads: f64,
    /// Weight words read from DRAM.
    pub weight_reads: f64,
    /// Output words written to DRAM.
    pub output_writes: f64,
}

impl DramBoundBreakdown {
    /// Computes the balanced breakdown of Eq. 15 for a layer.
    #[must_use]
    pub fn of(layer: &ConvLayer, mem: OnChipMemory) -> Self {
        let half = layer.macs() as f64 / (layer.window_reuse() * mem.words()).sqrt();
        DramBoundBreakdown {
            input_reads: half.max(layer.input_words() as f64),
            weight_reads: half.max(layer.weight_words() as f64),
            output_writes: layer.output_words() as f64,
        }
    }

    /// Total words.
    #[must_use]
    pub fn total(&self) -> f64 {
        self.input_reads + self.weight_reads + self.output_writes
    }
}

/// Per-layer summary of every bound, convenient for reports.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BoundSummary {
    /// Effective on-chip memory used for the bounds.
    pub mem_words: f64,
    /// Theorem 2 asymptotic DRAM bound (words).
    pub theorem2_words: f64,
    /// Practical Eq. 15 DRAM bound (words), clamped by the ideal volume.
    pub dram_words: f64,
    /// GBuf read bound (words).
    pub gbuf_words: f64,
    /// Register write bound (writes = MACs).
    pub reg_writes: u64,
    /// Sliding-window reuse R of the layer.
    pub window_reuse: f64,
}

impl BoundSummary {
    /// Computes all bounds for one layer.
    #[must_use]
    pub fn of(layer: &ConvLayer, mem: OnChipMemory) -> Self {
        BoundSummary {
            mem_words: mem.words(),
            theorem2_words: theorem2_dram_words(layer, mem),
            dram_words: dram_bound_words(layer, mem),
            gbuf_words: gbuf_bound_words(layer, mem),
            reg_writes: reg_bound_writes(layer),
            window_reuse: layer.window_reuse(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use conv_model::workloads;

    fn vgg_layer() -> ConvLayer {
        // conv3_1 at batch 3, the paper's workload granularity.
        workloads::vgg16(3).layer(4).unwrap().layer
    }

    #[test]
    fn memory_unit_conversions() {
        let mem = OnChipMemory::from_kib(64.0);
        assert_eq!(mem.words(), 32768.0);
        assert_eq!(mem.bytes(), 65536.0);
        assert_eq!(mem.kib(), 64.0);
    }

    #[test]
    #[should_panic(expected = "must be positive")]
    fn zero_memory_rejected() {
        let _ = OnChipMemory::from_words(0.0);
    }

    #[test]
    fn theorem2_scales_as_inverse_sqrt_s() {
        let layer = vgg_layer();
        let q1 = theorem2_dram_words(&layer, OnChipMemory::from_kib(16.0));
        let q4 = theorem2_dram_words(&layer, OnChipMemory::from_kib(64.0));
        assert!((q1 / q4 - 2.0).abs() < 1e-12, "4x memory must halve Q");
    }

    #[test]
    fn theorem2_scales_as_inverse_sqrt_r() {
        // Same MAC count, different R: compare a 3x3 stride-1 (R=9) against
        // an equivalent-MM layer with R=1; bound ratio must be 3.
        let conv = ConvLayer::square(1, 64, 56, 64, 3, 1).unwrap();
        let mm = conv_model::workloads::fully_connected(
            1,
            64 * 9, // fold kernel taps into input features
            64 * 56 * 56,
        );
        assert_eq!(conv.macs(), mm.macs());
        let mem = OnChipMemory::from_kib(64.0);
        let ratio = theorem2_dram_words(&mm, mem) / theorem2_dram_words(&conv, mem);
        assert!((ratio - 3.0).abs() < 1e-12);
    }

    #[test]
    fn practical_bound_dominates_theorem2_constant() {
        let layer = vgg_layer();
        let mem = OnChipMemory::from_kib(66.5);
        assert!(practical_dram_words(&layer, mem) > theorem2_dram_words(&layer, mem));
    }

    #[test]
    fn practical_bound_includes_output_writes() {
        let layer = vgg_layer();
        // With enormous memory the read term vanishes and only writes remain.
        let mem = OnChipMemory::from_words(1e18);
        let q = practical_dram_words(&layer, mem);
        assert!((q - layer.output_words() as f64) / q < 1e-3);
    }

    #[test]
    fn clamped_bound_respects_ideal() {
        let layer = vgg_layer();
        let mem = OnChipMemory::from_words(1e18);
        assert_eq!(dram_bound_words(&layer, mem), ideal_dram_words(&layer));
    }

    #[test]
    fn naive_is_2macs() {
        let layer = vgg_layer();
        assert_eq!(naive_dram_words(&layer), 2.0 * layer.macs() as f64);
    }

    #[test]
    fn mm_case_matches_hong_kung() {
        let fc = workloads::fully_connected(8, 1024, 1024);
        let mem = OnChipMemory::from_words(4096.0);
        // R = 1 => reduction factor is sqrt(S).
        assert_eq!(reduction_factor(&fc, mem), 64.0);
    }

    #[test]
    fn breakdown_sums_to_total() {
        let layer = vgg_layer();
        let mem = OnChipMemory::from_kib(66.5);
        let b = DramBoundBreakdown::of(&layer, mem);
        // Balanced reads.
        assert_eq!(b.input_reads, b.weight_reads);
        let expected = practical_dram_words(&layer, mem);
        assert!((b.total() - expected).abs() / expected < 1e-12);
    }

    #[test]
    fn gbuf_bound_is_read_part_of_dram_bound() {
        let layer = vgg_layer();
        let mem = OnChipMemory::from_kib(66.5);
        let gbuf = gbuf_bound_words(&layer, mem);
        let dram = practical_dram_words(&layer, mem);
        assert!((gbuf + layer.output_words() as f64 - dram).abs() < 1e-6);
    }

    #[test]
    fn reg_bound_is_macs() {
        let layer = vgg_layer();
        assert_eq!(reg_bound_writes(&layer), layer.macs());
    }

    #[test]
    fn summary_consistent() {
        let layer = vgg_layer();
        let mem = OnChipMemory::from_kib(66.5);
        let s = BoundSummary::of(&layer, mem);
        assert_eq!(s.reg_writes, layer.macs());
        assert_eq!(s.window_reuse, 9.0);
        assert!(s.dram_words >= s.theorem2_words);
    }

    #[test]
    fn bound_monotone_in_memory() {
        let layer = vgg_layer();
        let mut prev = f64::INFINITY;
        for kib in [16.0, 32.0, 64.0, 128.0, 256.0] {
            let q = dram_bound_words(&layer, OnChipMemory::from_kib(kib));
            assert!(q <= prev, "bound must not increase with memory");
            prev = q;
        }
    }

    #[test]
    fn bytes_are_twice_words() {
        let layer = vgg_layer();
        let mem = OnChipMemory::from_kib(66.5);
        assert_eq!(
            dram_bound_bytes(&layer, mem),
            2.0 * dram_bound_words(&layer, mem)
        );
        assert_eq!(
            practical_dram_bytes(&layer, mem),
            2.0 * practical_dram_words(&layer, mem)
        );
    }
}
