//! Property-based tests of the analytic bounds: monotonicity, scaling laws
//! and internal consistency of Theorem 2 / Eq. 15.

use comm_bound::{
    dram_bound_words, gbuf_bound_words, ideal_dram_words, naive_dram_words, practical_dram_words,
    reduction_factor, theorem2_dram_words, DramBoundBreakdown, OnChipMemory,
};
use conv_model::{ConvLayer, Padding};
use proptest::prelude::*;

fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..=4,
        1usize..=64,
        4usize..=64,
        1usize..=32,
        1usize..=5,
        1usize..=3,
    )
        .prop_filter_map("valid layer", |(b, co, size, ci, k, s)| {
            ConvLayer::builder()
                .batch(b)
                .out_channels(co)
                .in_channels(ci)
                .input(size, size)
                .kernel(k, k)
                .stride(s)
                .padding(Padding::same(k))
                .build()
                .ok()
        })
}

proptest! {
    #[test]
    fn bound_monotone_decreasing_in_memory(layer in layer_strategy(), kib in 1.0f64..256.0) {
        let q1 = dram_bound_words(&layer, OnChipMemory::from_kib(kib));
        let q2 = dram_bound_words(&layer, OnChipMemory::from_kib(kib * 2.0));
        prop_assert!(q2 <= q1 + 1e-9);
    }

    #[test]
    fn theorem2_exact_sqrt_scaling(layer in layer_strategy(), words in 64.0f64..1e6) {
        let q1 = theorem2_dram_words(&layer, OnChipMemory::from_words(words));
        let q4 = theorem2_dram_words(&layer, OnChipMemory::from_words(words * 4.0));
        prop_assert!((q1 / q4 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn practical_dominates_theorem2(layer in layer_strategy(), words in 64.0f64..1e6) {
        let mem = OnChipMemory::from_words(words);
        prop_assert!(practical_dram_words(&layer, mem) >= theorem2_dram_words(&layer, mem));
    }

    #[test]
    fn bound_between_ideal_and_naive(layer in layer_strategy(), words in 64.0f64..1e6) {
        let mem = OnChipMemory::from_words(words);
        let q = dram_bound_words(&layer, mem);
        prop_assert!(q >= ideal_dram_words(&layer) - 1e-9);
        // The naive volume only dominates when some reuse is possible
        // (S*R >= ~4); always true in this strategy's range.
        prop_assert!(q <= naive_dram_words(&layer) + ideal_dram_words(&layer));
    }

    #[test]
    fn reduction_factor_is_sqrt_rs(layer in layer_strategy(), words in 64.0f64..1e6) {
        let mem = OnChipMemory::from_words(words);
        let f = reduction_factor(&layer, mem);
        prop_assert!((f * f - layer.window_reuse() * words).abs() / (f * f) < 1e-9);
    }

    #[test]
    fn breakdown_consistent_with_total(layer in layer_strategy(), words in 64.0f64..1e6) {
        let mem = OnChipMemory::from_words(words);
        let b = DramBoundBreakdown::of(&layer, mem);
        // The breakdown clamps reads at the per-stream ideal, so its total
        // is >= the unclamped Eq. 15 value.
        prop_assert!(b.total() >= practical_dram_words(&layer, mem) - 1e-6);
        prop_assert!(b.input_reads >= 0.0 && b.weight_reads >= 0.0);
        prop_assert_eq!(b.output_writes, layer.output_words() as f64);
    }

    #[test]
    fn gbuf_bound_at_most_dram_bound(layer in layer_strategy(), words in 64.0f64..1e6) {
        let mem = OnChipMemory::from_words(words);
        // GBuf bound excludes output writes but includes the input+weight
        // ideal clamp; it is within the DRAM bound + ideal slack.
        let gbuf = gbuf_bound_words(&layer, mem);
        let dram = dram_bound_words(&layer, mem);
        prop_assert!(gbuf <= dram + 1e-6);
    }

    #[test]
    fn batch_scales_bound_linearly_in_read_regime(
        co in 8usize..=64,
        size in 8usize..=32,
        ci in 8usize..=32,
    ) {
        // With small memory (read-dominated), doubling the batch doubles
        // the bound.
        let l1 = ConvLayer::square(1, co, size, ci, 3, 1).unwrap();
        let l2 = ConvLayer::square(2, co, size, ci, 3, 1).unwrap();
        let mem = OnChipMemory::from_words(512.0);
        let q1 = practical_dram_words(&l1, mem);
        let q2 = practical_dram_words(&l2, mem);
        prop_assert!((q2 / q1 - 2.0).abs() < 1e-9);
    }
}
