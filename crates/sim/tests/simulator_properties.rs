//! Property and cross-implementation tests of the cycle simulator.

use accel_sim::{simulate, ArchConfig};
use conv_model::{ConvLayer, Padding};
use dataflow::Tiling;
use proptest::prelude::*;

fn feasible_case() -> impl Strategy<Value = (ConvLayer, Tiling)> {
    (
        1usize..=2,
        1usize..=12,
        4usize..=16,
        1usize..=6,
        1usize..=3,
        1usize..=2,
        prop::bool::ANY,
        1usize..=2,
        1usize..=12,
        1usize..=8,
        1usize..=8,
    )
        .prop_filter_map(
            "layer valid & tiling feasible",
            |(b, co, size, ci, k, s, pad, tb, tz, ty, tx)| {
                let layer = ConvLayer::builder()
                    .batch(b)
                    .out_channels(co)
                    .in_channels(ci)
                    .input(size, size)
                    .kernel(k, k)
                    .stride(s)
                    .padding(if pad {
                        Padding::same(k)
                    } else {
                        Padding::none()
                    })
                    .build()
                    .ok()?;
                let tiling = Tiling::clamped(&layer, tb, tz, ty, tx);
                Some((layer, tiling))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn conservation_laws((layer, tiling) in feasible_case()) {
        let arch = ArchConfig::example();
        let Ok(stats) = simulate(&layer, &tiling, &arch) else {
            // Structurally infeasible tilings are allowed to error.
            return Ok(());
        };
        // Useful MACs are exactly the layer's MACs.
        prop_assert_eq!(stats.useful_macs, layer.macs());
        // Lockstep execution can only add work, never lose it.
        prop_assert!(stats.issued_slots >= stats.useful_macs);
        // Every output written exactly once.
        prop_assert_eq!(stats.dram.output_writes, layer.output_words());
        // Weights: DRAM, GBuf-in, GBuf-out all equal (read-once chain).
        prop_assert_eq!(stats.gbuf.weight_writes, stats.dram.weight_reads);
        prop_assert_eq!(stats.gbuf.weight_reads, stats.dram.weight_reads);
        // Input halos only ever amplify traffic — for dense windows. With
        // stride > kernel the block-level DRAM fetch is a contiguous range
        // (Eq. 14's x'' = D(x−1)+Wk includes skipped pixels) while the
        // per-row segments load only live words, so the inequality flips.
        if layer.stride() <= layer.kernel_width().min(layer.kernel_height()) {
            prop_assert!(stats.gbuf.input_reads >= stats.dram.input_reads);
        }
        // GReg duplication multiplies GBuf reads by the group-column count.
        let copies = (arch.pe_cols / arch.group_cols) as u64;
        prop_assert_eq!(stats.reg.greg_input_writes, stats.gbuf.input_reads * copies);
        // LReg writes == issued slots (one Psum write per PE per cycle).
        prop_assert_eq!(stats.reg.lreg_writes, stats.issued_slots);
        // Cycle accounting is consistent.
        prop_assert_eq!(stats.total_cycles(), stats.compute_cycles + stats.stall_cycles);
        // Utilizations stay in [0, 1].
        let u = stats.utilization;
        for v in [u.gbuf, u.greg, u.lreg, u.memory_overall, u.pe] {
            prop_assert!((0.0..=1.0).contains(&v));
        }
    }

    #[test]
    fn faster_dram_never_increases_stalls((layer, tiling) in feasible_case()) {
        let slow = ArchConfig::example();
        let mut fast = slow;
        fast.dram.bandwidth_bytes_per_s *= 4.0;
        let (Ok(s_slow), Ok(s_fast)) = (
            simulate(&layer, &tiling, &slow),
            simulate(&layer, &tiling, &fast),
        ) else {
            return Ok(());
        };
        prop_assert!(s_fast.stall_cycles <= s_slow.stall_cycles);
        prop_assert_eq!(s_fast.compute_cycles, s_slow.compute_cycles);
        prop_assert_eq!(s_fast.dram, s_slow.dram);
    }
}

#[test]
fn all_implementations_run_every_vgg_layer() {
    let net = conv_model::workloads::vgg16(3);
    for index in 1..=5 {
        let arch = ArchConfig::implementation(index);
        for named in net.conv_layers() {
            let tiling = clb_core_plan(&named.layer, &arch);
            let stats = simulate(&named.layer, &tiling, &arch)
                .unwrap_or_else(|e| panic!("implem {index} {}: {e}", named.name));
            assert_eq!(stats.useful_macs, named.layer.macs());
            assert!(stats.utilization.pe > 0.5, "implem {index} {}", named.name);
        }
    }
}

/// Minimal local re-implementation of the planner's feasibility scan so this
/// crate's tests do not depend on `clb-core` (which depends on this crate).
fn clb_core_plan(layer: &ConvLayer, arch: &ArchConfig) -> Tiling {
    use accel_sim::mapping::{map_block, Block};
    let mut best: Option<(u64, Tiling)> = None;
    for b in 1..=layer.batch() {
        for &z in &dataflow::candidates(layer.out_channels()) {
            if z > arch.wgbuf_entries {
                continue;
            }
            for &y in &dataflow::candidates(layer.output_height()) {
                for &x in &dataflow::candidates(layer.output_width()) {
                    let t = Tiling { b, z, y, x };
                    let (xh, yh) = layer.input_footprint(t.x, t.y);
                    if t.b * xh * yh > arch.igbuf_entries {
                        continue;
                    }
                    let block = Block {
                        i0: 0,
                        b: t.b,
                        z0: 0,
                        z: t.z,
                        y0: 0,
                        y: t.y,
                        x0: 0,
                        x: t.x,
                    };
                    if map_block(arch, layer, &block).is_err() {
                        continue;
                    }
                    let q = dataflow::our_dataflow_traffic(layer, &t).total_words();
                    match best {
                        Some((bq, _)) if bq <= q => {}
                        _ => best = Some((q, t)),
                    }
                }
            }
        }
    }
    best.expect("feasible tiling exists").1
}

#[test]
fn bigger_arrays_do_not_change_dram_traffic() {
    // DRAM traffic depends on the tiling, not the PE count: implementations
    // 1-3 share the same memory class and should see identical DRAM volumes
    // for identical tilings.
    let layer = ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap();
    let t = Tiling::clamped(&layer, 1, 64, 8, 28);
    let mut volumes = Vec::new();
    for index in 1..=3 {
        let arch = ArchConfig::implementation(index);
        if let Ok(stats) = simulate(&layer, &t, &arch) {
            volumes.push(stats.dram.total_words());
        }
    }
    assert!(volumes.len() >= 2);
    assert!(volumes.windows(2).all(|w| w[0] == w[1]), "{volumes:?}");
}
