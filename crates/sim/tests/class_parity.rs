//! Parity pinning of the block-class simulator against the per-block
//! reference walk, plus regression tests for the simulator input-validation
//! fixes.
//!
//! The class-based `simulate` collapses the block grid into shape classes
//! and multiplies; hardware-event-validation practice says a counter model
//! is only trustworthy when checked against a known-ground-truth reference,
//! so every property here demands *bit identity* — every `SimStats` field,
//! `stall_cycles` and the floating-point utilizations included (compared by
//! bit pattern, not `==`, so a `-0.0`/`0.0` drift could not hide).

use accel_sim::{simulate, simulate_reference, ArchConfig, SimError};
use conv_model::{ConvLayer, Padding};
use dataflow::Tiling;
use proptest::prelude::*;

/// Asserts bit-for-bit identity of two simulation outcomes (stats or
/// errors).
fn assert_bit_identical(
    fast: &Result<accel_sim::SimStats, SimError>,
    slow: &Result<accel_sim::SimStats, SimError>,
    context: &dyn std::fmt::Display,
) {
    match (fast, slow) {
        (Ok(f), Ok(s)) => {
            assert_eq!(f, s, "stats diverged: {context}");
            let (uf, us) = (f.utilization, s.utilization);
            for (name, a, b) in [
                ("gbuf", uf.gbuf, us.gbuf),
                ("greg", uf.greg, us.greg),
                ("lreg", uf.lreg, us.lreg),
                ("memory_overall", uf.memory_overall, us.memory_overall),
                ("pe", uf.pe, us.pe),
            ] {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "utilization.{name} bits diverged ({a} vs {b}): {context}"
                );
            }
        }
        (Err(f), Err(s)) => assert_eq!(f, s, "errors diverged: {context}"),
        (f, s) => panic!("outcome diverged: fast={f:?} slow={s:?}: {context}"),
    }
}

fn random_case() -> impl Strategy<Value = (ConvLayer, Tiling)> {
    (
        1usize..=3,
        1usize..=24,
        3usize..=20,
        1usize..=8,
        1usize..=4,
        1usize..=3,
        prop::bool::ANY,
        1usize..=3,
        1usize..=24,
        1usize..=20,
        1usize..=20,
    )
        .prop_filter_map(
            "layer valid",
            |(b, co, size, ci, k, s, pad, tb, tz, ty, tx)| {
                let layer = ConvLayer::builder()
                    .batch(b)
                    .out_channels(co)
                    .in_channels(ci)
                    .input(size, size)
                    .kernel(k, k)
                    .stride(s)
                    .padding(if pad {
                        Padding::same(k)
                    } else {
                        Padding::none()
                    })
                    .build()
                    .ok()?;
                let tiling = Tiling::clamped(&layer, tb, tz, ty, tx);
                Some((layer, tiling))
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// The acceptance property of the class decomposition: across random
    /// layers × tilings × all five Table I implementations, class-based and
    /// per-block simulation agree on every bit — successes *and* errors.
    #[test]
    fn class_simulate_bit_identical_to_reference((layer, tiling) in random_case()) {
        for implem in 1..=5 {
            let arch = ArchConfig::implementation(implem);
            let fast = simulate(&layer, &tiling, &arch);
            let slow = simulate_reference(&layer, &tiling, &arch);
            let context = format!("implem {implem}, layer {layer}, tiling {tiling}");
            assert_bit_identical(&fast, &slow, &context);
        }
    }
}

#[test]
fn vgg_batch64_planned_tilings_bit_identical() {
    // The bench workload: every VGG-16 conv layer at batch 64 under its
    // planned tiling, on implementation 1 (the `sim_hotpath` gate re-proves
    // this before timing).
    let arch = ArchConfig::implementation(1);
    for named in conv_model::workloads::vgg16(64).conv_layers() {
        let tiling = clb_core_plan(&named.layer, &arch);
        let fast = simulate(&named.layer, &tiling, &arch);
        let slow = simulate_reference(&named.layer, &tiling, &arch);
        assert_bit_identical(&fast, &slow, &named.name);
    }
}

/// Minimal local re-implementation of the planner's feasibility scan so
/// this crate's tests do not depend on `clb-core` (which depends on this
/// crate). Mirrors `simulator_properties.rs`.
fn clb_core_plan(layer: &ConvLayer, arch: &ArchConfig) -> Tiling {
    use accel_sim::mapping::{map_block, Block};
    let mut best: Option<(u64, Tiling)> = None;
    for b in 1..=layer.batch().min(4) {
        for z in [1, 2, 4, 8, 16, 32, 64, 128, 256] {
            for y in [1, 2, 4, 7, 8, 14, 16, 28] {
                for x in [1, 2, 4, 7, 8, 14, 16, 28] {
                    let t = Tiling::clamped(layer, b, z, y, x);
                    if t.z > arch.wgbuf_entries {
                        continue;
                    }
                    let (xh, yh) = layer.input_footprint(t.x, t.y);
                    if t.b * xh * yh > arch.igbuf_entries {
                        continue;
                    }
                    let block = Block {
                        i0: 0,
                        b: t.b,
                        z0: 0,
                        z: t.z,
                        y0: 0,
                        y: t.y,
                        x0: 0,
                        x: t.x,
                    };
                    if map_block(arch, layer, &block).is_err() {
                        continue;
                    }
                    let traffic = dataflow::our_dataflow_traffic(layer, &t).total_words();
                    match best {
                        Some((q, _)) if q <= traffic => {}
                        _ => best = Some((traffic, t)),
                    }
                }
            }
        }
    }
    best.expect("some tiling is feasible").1
}

/// Independent re-derivation of the utilization ratios, in the seed
/// implementation's style: per-block f64 snapshots weighted by compute
/// cycles, computed here from public APIs only (`block_grid`, `map_block`,
/// layer geometry). The production paths share one integer-exact
/// aggregation stage, so bit-identity between them cannot catch a formula
/// bug in that shared stage — this oracle can, because it shares nothing
/// but the mapping.
fn seed_style_utilization(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
) -> accel_sim::Utilization {
    use accel_sim::mapping::map_block;
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    let mut util_w = 0.0f64;
    let (mut lreg, mut gbuf, mut greg, mut pe) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for block in accel_sim::block_grid(layer, tiling) {
        let m = map_block(arch, layer, &block).unwrap();
        let psum = (block.b * block.z * block.y * block.x) as u64;
        let (xh, yh) = layer.input_footprint(block.x, block.y);
        let igbuf_needed = block.b * xh * yh;
        let rows = m.rows_used() as u64;
        let cols = block.z.div_ceil(m.zs).min(arch.pe_cols) as u64;
        let input_copies = (arch.pe_cols / arch.group_cols) as u64;
        let weight_copies = (arch.pe_rows / arch.group_rows) as u64;
        let compute = ci * taps * m.pass_cycles();
        let issued = rows * cols * m.pass_cycles() * taps * ci;
        let useful = psum * taps * ci;
        let w = compute as f64;
        util_w += w;
        lreg += psum as f64 / arch.lreg_total_entries() as f64 * w;
        gbuf += (igbuf_needed.min(arch.igbuf_entries) + block.z.min(arch.wgbuf_entries)) as f64
            / (arch.igbuf_entries + arch.wgbuf_entries) as f64
            * w;
        let greg_used_bytes = (rows * m.segment_words as u64 * input_copies
            + weight_copies * block.z as u64) as f64
            * 2.0;
        greg += (greg_used_bytes / arch.greg_bytes as f64).min(1.0) * w;
        pe += useful as f64 / issued as f64 * w;
    }
    let lreg_b = (arch.lreg_total_entries() * 2) as f64;
    let gbuf_b = arch.gbuf_bytes() as f64;
    let greg_b = arch.greg_bytes as f64;
    let (lreg, gbuf, greg, pe) = (lreg / util_w, gbuf / util_w, greg / util_w, pe / util_w);
    accel_sim::Utilization {
        gbuf,
        greg,
        lreg,
        memory_overall: (lreg * lreg_b + gbuf * gbuf_b + greg * greg_b)
            / (lreg_b + gbuf_b + greg_b),
        pe,
    }
}

#[test]
fn utilizations_match_independent_seed_style_oracle() {
    // A formula bug in the shared integer aggregation (wrong clamp, wrong
    // PE denominator, swapped numerator) shifts a ratio by orders of
    // magnitude more than the ~1e-12 reordering noise this tolerates.
    let cases = [
        (ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap(), (1, 8, 6, 6)),
        (ConvLayer::square(2, 24, 14, 8, 3, 1).unwrap(), (1, 5, 5, 5)),
        (
            ConvLayer::square(3, 16, 15, 6, 5, 2).unwrap(),
            (2, 16, 4, 7),
        ),
    ];
    for (layer, (tb, tz, ty, tx)) in cases {
        for implem in 1..=5 {
            let arch = ArchConfig::implementation(implem);
            let tiling = Tiling::clamped(&layer, tb, tz, ty, tx);
            let Ok(stats) = simulate(&layer, &tiling, &arch) else {
                continue; // structurally infeasible on this implementation
            };
            let expected = seed_style_utilization(&layer, &tiling, &arch);
            let got = stats.utilization;
            for (name, a, b) in [
                ("gbuf", got.gbuf, expected.gbuf),
                ("greg", got.greg, expected.greg),
                ("lreg", got.lreg, expected.lreg),
                (
                    "memory_overall",
                    got.memory_overall,
                    expected.memory_overall,
                ),
                ("pe", got.pe, expected.pe),
            ] {
                assert!(
                    (a - b).abs() <= 1e-12 * b.abs().max(1.0),
                    "implem {implem}, {layer}, {tiling}: utilization.{name} \
                     {a} != seed-style {b}"
                );
            }
        }
    }
}

#[test]
fn zero_dimension_tiling_errors_promptly() {
    // Regression: `block_grid` used to loop forever when a tiling field was
    // 0 (`x0 += tiling.x` never advances). `Tiling` fields are `pub` and
    // `Deserialize`, so hostile JSON could park a worker thread; the
    // simulator now rejects before touching the grid. The test would hang
    // without the fix, so its very termination is the assertion.
    let layer = ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap();
    let arch = ArchConfig::example();
    for tiling in [
        Tiling {
            b: 0,
            z: 8,
            y: 6,
            x: 6,
        },
        Tiling {
            b: 1,
            z: 0,
            y: 6,
            x: 6,
        },
        Tiling {
            b: 1,
            z: 8,
            y: 0,
            x: 6,
        },
        Tiling {
            b: 1,
            z: 8,
            y: 6,
            x: 0,
        },
        Tiling {
            b: 0,
            z: 0,
            y: 0,
            x: 0,
        },
    ] {
        for result in [
            simulate(&layer, &tiling, &arch),
            simulate_reference(&layer, &tiling, &arch),
        ] {
            let err = result.unwrap_err();
            assert!(
                matches!(&err, SimError::InvalidTiling(m) if m.contains("nonzero")),
                "{tiling}: {err}"
            );
        }
    }
}

#[test]
fn invalid_arch_reports_the_violated_invariant() {
    // Regression: an invalid `ArchConfig` used to surface as the misleading
    // `WeightTileTooLarge { z: 0, capacity: 0 }`; it now names the real
    // cause.
    let layer = ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap();
    let tiling = Tiling::clamped(&layer, 1, 8, 6, 6);
    type BreakArch = fn(&mut ArchConfig);
    let cases: [(BreakArch, &str); 3] = [
        (|a| a.pe_rows = 0, "PE array"),
        (|a| a.group_rows = 3, "group rows 3"),
        (|a| a.igbuf_entries = 0, "GBufs"),
    ];
    for (break_it, needle) in cases {
        let mut arch = ArchConfig::example();
        break_it(&mut arch);
        let err = simulate(&layer, &tiling, &arch).unwrap_err();
        let SimError::InvalidArch(msg) = &err else {
            panic!("expected InvalidArch, got {err:?}");
        };
        assert!(msg.contains(needle), "{msg:?} should mention {needle:?}");
        assert!(err.to_string().contains("invalid architecture"));
    }
}
