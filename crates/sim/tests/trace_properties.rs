//! Property tests of the execution-trace subsystem: a trace's interval sums
//! must reproduce the [`SimStats`] it ships with bit-identically — across
//! random layers × tilings × all five Table I implementations — and an
//! over-cap trace request must be rejected with a typed error before any
//! expansion is allocated.

use accel_sim::trace::caps;
use accel_sim::{
    simulate, simulate_traced, ArchConfig, ExecutionTrace, SimError, SimStats, TraceOptions,
    TracePhase, TraceSegment,
};
use conv_model::{ConvLayer, Padding};
use dataflow::Tiling;
use proptest::prelude::*;

fn feasible_case() -> impl Strategy<Value = (ConvLayer, Tiling)> {
    (
        1usize..=2,
        1usize..=12,
        4usize..=16,
        1usize..=6,
        1usize..=3,
        1usize..=2,
        prop::bool::ANY,
        1usize..=2,
        1usize..=12,
        1usize..=8,
        1usize..=8,
    )
        .prop_filter_map(
            "layer valid & tiling feasible",
            |(b, co, size, ci, k, s, pad, tb, tz, ty, tx)| {
                let layer = ConvLayer::builder()
                    .batch(b)
                    .out_channels(co)
                    .in_channels(ci)
                    .input(size, size)
                    .kernel(k, k)
                    .stride(s)
                    .padding(if pad {
                        Padding::same(k)
                    } else {
                        Padding::none()
                    })
                    .build()
                    .ok()?;
                let tiling = Tiling::clamped(&layer, tb, tz, ty, tx);
                Some((layer, tiling))
            },
        )
}

/// Re-derives the four pinned totals from the serialized per-class
/// segments, using exactly the accumulation discipline the simulator
/// documents: plain sums for compute cycles, blocks and iterations,
/// saturating sums for stall cycles.
fn resum(trace: &ExecutionTrace) -> (u64, u64, u64, u64) {
    let mut compute = 0u64;
    let mut stall = 0u64;
    let mut blocks = 0u64;
    let mut iterations = 0u64;
    for class in &trace.classes {
        let per_block_compute: u64 = class
            .segments
            .iter()
            .filter(|s| s.phase == TracePhase::Compute)
            .map(TraceSegment::total_cycles)
            .sum();
        let per_block_stall = class
            .segments
            .iter()
            .filter(|s| s.phase != TracePhase::Compute)
            .fold(0u64, |acc, s| acc.saturating_add(s.total_cycles()));
        compute += per_block_compute * class.multiplicity;
        stall = stall.saturating_add(per_block_stall.saturating_mul(class.multiplicity));
        blocks += class.multiplicity;
        iterations += class.iterations_per_block * class.multiplicity;
    }
    (compute, stall, blocks, iterations)
}

fn assert_trace_matches(stats: &SimStats, trace: &ExecutionTrace, context: &str) {
    // The shipped totals and an independent re-summation of the segments
    // must both reproduce the stats fields bit-identically.
    assert_eq!(
        trace.totals.compute_cycles, stats.compute_cycles,
        "{context}"
    );
    assert_eq!(trace.totals.stall_cycles, stats.stall_cycles, "{context}");
    assert_eq!(trace.totals.blocks, stats.blocks, "{context}");
    assert_eq!(trace.totals.iterations, stats.iterations, "{context}");
    let (compute, stall, blocks, iterations) = resum(trace);
    assert_eq!(compute, stats.compute_cycles, "{context}");
    assert_eq!(stall, stats.stall_cycles, "{context}");
    assert_eq!(blocks, stats.blocks, "{context}");
    assert_eq!(iterations, stats.iterations, "{context}");
    // Per-class rollups agree with their own segments.
    for class in &trace.classes {
        let per_block_stall = class
            .segments
            .iter()
            .filter(|s| s.phase != TracePhase::Compute)
            .fold(0u64, |acc, s| acc.saturating_add(s.total_cycles()));
        assert_eq!(class.stall_cycles, per_block_stall, "{context}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn trace_sums_match_simstats((layer, tiling) in feasible_case()) {
        for index in 1..=5 {
            let arch = ArchConfig::implementation(index);
            let traced = simulate_traced(&layer, &tiling, &arch, &TraceOptions::default());
            let untraced = simulate(&layer, &tiling, &arch);
            let Ok((stats, trace)) = traced else {
                // Structurally infeasible tilings are allowed to error —
                // but then the untraced simulation must refuse too (the
                // small cases of `feasible_case` never hit the trace caps).
                prop_assert!(untraced.is_err(), "implem {}", index);
                continue;
            };
            // Tracing never changes the simulation.
            prop_assert_eq!(Some(&stats), untraced.as_ref().ok(), "implem {}", index);
            assert_trace_matches(&stats, &trace, &format!("implem {index}"));
            prop_assert!(trace.blocks.is_empty());
        }
    }

    #[test]
    fn expanded_blocks_cover_the_grid((layer, tiling) in feasible_case()) {
        let arch = ArchConfig::example();
        let options = TraceOptions { expand: true };
        let Ok((stats, trace)) = simulate_traced(&layer, &tiling, &arch, &options) else {
            return Ok(());
        };
        assert_trace_matches(&stats, &trace, "expanded");
        // The expansion lists exactly `blocks` entries, each pointing at a
        // class whose multiplicity it contributes to.
        prop_assert_eq!(trace.blocks.len() as u64, stats.blocks);
        let mut per_class = vec![0u64; trace.classes.len()];
        for block in &trace.blocks {
            prop_assert!(block.class < trace.classes.len());
            per_class[block.class] += 1;
        }
        for (class, &count) in trace.classes.iter().zip(&per_class) {
            prop_assert_eq!(class.multiplicity, count);
        }
        // And the expanded trace renders as VCD with a header and at least
        // one timestamped change.
        let vcd = trace.to_vcd().expect("expanded traces render");
        prop_assert!(vcd.contains("$enddefinitions $end"));
        prop_assert!(vcd.lines().any(|l| l.starts_with('#')));
    }
}

#[test]
fn over_cap_expansion_rejected_before_allocation() {
    // A unit tiling on a big layer implies ~200k blocks — far past
    // MAX_TRACE_BLOCKS. The request must be refused with the cap named,
    // from the axis-run cardinalities alone (this test completes in
    // microseconds; walking 200k blocks would be visible).
    let layer = ConvLayer::square(2, 64, 56, 8, 3, 1).unwrap();
    let tiling = Tiling::clamped(&layer, 1, 1, 1, 1);
    let blocks = 2u128 * 64 * 56 * 56;
    assert!(blocks > caps::MAX_TRACE_BLOCKS);
    let err = simulate_traced(
        &layer,
        &tiling,
        &ArchConfig::example(),
        &TraceOptions { expand: true },
    )
    .unwrap_err();
    let SimError::TraceTooLarge {
        cap_name,
        have,
        cap,
    } = err
    else {
        panic!("expected TraceTooLarge, got {err:?}");
    };
    assert_eq!(cap_name, "MAX_TRACE_BLOCKS");
    assert_eq!(have, blocks);
    assert_eq!(cap, caps::MAX_TRACE_BLOCKS);
    assert!(err.to_string().contains("MAX_TRACE_BLOCKS"));

    // Without expansion the same request is fine: the class table stays
    // compact no matter how many blocks the grid has.
    let (stats, trace) = simulate_traced(
        &layer,
        &tiling,
        &ArchConfig::example(),
        &TraceOptions::default(),
    )
    .unwrap();
    assert_eq!(trace.totals.blocks, stats.blocks);
    assert!(trace.classes.len() <= 16);
}

#[test]
fn traced_vgg_layer_matches_untraced() {
    // The CI smoke contract: a VGG-16 conv layer traces, expands, renders
    // VCD, and the totals agree with the untraced run bit-for-bit.
    let net = conv_model::workloads::vgg16(1);
    let named = net.conv_layers().nth(1).unwrap(); // conv1_2: 64ch 224x224
    let arch = ArchConfig::example();
    let tiling = Tiling::clamped(&named.layer, 1, 64, 4, 56);
    let stats = simulate(&named.layer, &tiling, &arch).unwrap();
    let (traced_stats, trace) =
        simulate_traced(&named.layer, &tiling, &arch, &TraceOptions { expand: true }).unwrap();
    assert_eq!(stats, traced_stats);
    assert_eq!(trace.totals.compute_cycles, stats.compute_cycles);
    assert_eq!(trace.totals.stall_cycles, stats.stall_cycles);
    let vcd = trace.to_vcd().unwrap();
    assert!(vcd.contains("$enddefinitions $end"));
    assert!(vcd.lines().filter(|l| l.starts_with('#')).count() > 1);
}
