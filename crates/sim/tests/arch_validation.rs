//! Hostile-`ArchConfig` corpus: the struct is `pub` + `Deserialize` and the
//! service forwards full user-supplied `arch` objects, so *every* field
//! combination — zero, huge, overflowing, non-finite — must either validate
//! cleanly or produce a typed error naming the violated invariant. Nothing
//! in this file is allowed to panic, hang or exhaust memory; in the spirit
//! of hardware-performance-model validation (Röhl et al.), the model
//! boundary is only trustworthy under adversarial inputs.

use accel_sim::{caps, simulate, simulate_reference, ArchConfig, DramConfig, SimError};
use conv_model::ConvLayer;
use dataflow::Tiling;
use proptest::prelude::*;

/// Hostile palette for sized fields: boundary and overflow magnets.
const SIZES: [usize; 9] = [
    0,
    1,
    4,
    16,
    1024,
    1 << 20,
    1 << 30,
    usize::MAX / 2,
    usize::MAX,
];

/// Hostile palette for float fields (frequency, bandwidth).
const FLOATS: [f64; 9] = [
    f64::NAN,
    f64::NEG_INFINITY,
    -1.0,
    0.0,
    1e-300,
    1.0,
    500e6,
    6.4e9,
    f64::INFINITY,
];

/// Hostile palette for the latency field.
const LATENCIES: [u64; 6] = [0, 1, 100, 1_000_000, u64::MAX / 2, u64::MAX];

fn hostile_arch() -> impl Strategy<Value = ArchConfig> {
    (
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..SIZES.len(),
        0usize..FLOATS.len(),
        0usize..FLOATS.len(),
        0usize..LATENCIES.len(),
    )
        .prop_map(
            |(pr, pc, gr, gc, lr, ig, wg, gb, gs, fq, bw, lat)| ArchConfig {
                pe_rows: SIZES[pr],
                pe_cols: SIZES[pc],
                group_rows: SIZES[gr],
                group_cols: SIZES[gc],
                lreg_entries_per_pe: SIZES[lr],
                igbuf_entries: SIZES[ig],
                wgbuf_entries: SIZES[wg],
                greg_bytes: SIZES[gb],
                greg_segment_entries: SIZES[gs],
                core_freq_hz: FLOATS[fq],
                dram: DramConfig {
                    bandwidth_bytes_per_s: FLOATS[bw],
                    latency_cycles: LATENCIES[lat],
                },
            },
        )
}

fn small_layer() -> ConvLayer {
    ConvLayer::square(1, 8, 10, 4, 3, 1).unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn validate_never_panics_and_bounds_derived_sizes(arch in hostile_arch()) {
        // `validate` itself must be total: no overflow, no panic.
        let verdict = arch.validate();
        if verdict.is_ok() {
            // Everything validate admits must have safely computable,
            // cap-bounded derived quantities.
            prop_assert!(arch.pe_count() <= caps::MAX_PE_DIM * caps::MAX_PE_DIM);
            prop_assert!(
                (arch.effective_onchip_bytes() as u128) <= caps::MAX_EFFECTIVE_ONCHIP_BYTES
            );
            let wpc = arch.dram_words_per_cycle();
            prop_assert!(wpc.is_finite() && wpc > 0.0);
        } else {
            let msg = verdict.unwrap_err();
            prop_assert!(!msg.is_empty(), "the violated invariant must be named");
        }
    }

    #[test]
    fn simulate_is_total_over_hostile_archs(arch in hostile_arch(), tb in 1usize..=2, tz in 1usize..=8, txy in 1usize..=10) {
        // Whatever the configuration, simulation of a small layer must
        // terminate promptly with Ok or a typed SimError — never panic,
        // never hang walking a block grid.
        let layer = small_layer();
        let tiling = Tiling::clamped(&layer, tb, tz, txy, txy);
        match simulate(&layer, &tiling, &arch) {
            Ok(stats) => {
                prop_assert_eq!(stats.useful_macs, layer.macs());
                // The fast path stays pinned to the reference even at the
                // validation boundary.
                prop_assert_eq!(stats, simulate_reference(&layer, &tiling, &arch).unwrap());
            }
            Err(SimError::InvalidArch(msg)) => {
                prop_assert_eq!(arch.validate().unwrap_err(), msg);
            }
            Err(_other_typed_error) => {
                // Structurally infeasible (unmappable / GBuf overflow) is a
                // legitimate outcome for a valid-but-tiny architecture.
                prop_assert!(arch.validate().is_ok());
            }
        }
    }
}

#[test]
fn presets_always_validate() {
    for i in 1..=5 {
        ArchConfig::implementation(i).validate().unwrap();
    }
}

#[test]
fn overflow_magnet_configurations_error_with_named_invariants() {
    // Regression shapes: each used to be able to overflow a derived
    // computation (pe_count, lreg totals, effective memory, stall math)
    // before the caps existed.
    let base = ArchConfig::example();
    let cases = [
        ArchConfig {
            pe_rows: usize::MAX,
            pe_cols: usize::MAX,
            group_rows: 1,
            group_cols: 1,
            ..base
        },
        ArchConfig {
            lreg_entries_per_pe: usize::MAX,
            ..base
        },
        ArchConfig {
            igbuf_entries: usize::MAX,
            wgbuf_entries: usize::MAX,
            ..base
        },
        ArchConfig {
            dram: DramConfig {
                bandwidth_bytes_per_s: f64::MIN_POSITIVE,
                latency_cycles: u64::MAX,
            },
            ..base
        },
    ];
    let layer = small_layer();
    let tiling = Tiling::clamped(&layer, 1, 4, 5, 5);
    for arch in cases {
        let msg = arch.validate().unwrap_err();
        assert!(!msg.is_empty());
        let err = simulate(&layer, &tiling, &arch).unwrap_err();
        assert_eq!(err, SimError::InvalidArch(msg));
    }
}

#[test]
fn capped_extreme_but_valid_arch_simulates_without_overflow() {
    // The slowest permitted DRAM against the fastest permitted core is the
    // worst stall-arithmetic magnet that still passes validation; the
    // saturating stall path must keep it panic-free and reference-identical.
    let arch = ArchConfig {
        core_freq_hz: caps::MAX_CORE_FREQ_HZ,
        dram: DramConfig {
            bandwidth_bytes_per_s: caps::MIN_DRAM_BW,
            latency_cycles: caps::MAX_DRAM_LATENCY_CYCLES,
        },
        ..ArchConfig::example()
    };
    arch.validate().unwrap();
    let layer = small_layer();
    let tiling = Tiling::clamped(&layer, 1, 8, 5, 5);
    let fast = simulate(&layer, &tiling, &arch).unwrap();
    let slow = simulate_reference(&layer, &tiling, &arch).unwrap();
    assert_eq!(fast, slow);
    assert!(fast.stall_cycles > 0);
}
