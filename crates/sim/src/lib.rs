//! Cycle-level simulator of the communication-optimal CNN accelerator
//! (Section V, Fig. 10/11 of the paper).
//!
//! The paper evaluates a Verilog implementation synthesised at 65 nm with a
//! cycle-accurate simulator for memory-latency effects; this crate is the
//! Rust substitute (see `DESIGN.md` §2): a behavioural, counter-exact model
//! of the same architecture —
//!
//! * [`ArchConfig`] — the PE array / GReg / GBuf / DRAM configuration,
//!   including the five Table I implementations;
//! * [`mapping`] — the Section IV-B workload mapping onto PE rows/columns;
//! * [`simulate`] — the counting walk: DRAM, GBuf, GReg and LReg access
//!   volumes, cycles (compute + unhidden DRAM stalls), utilizations —
//!   evaluated per block *shape class* (one mapping walk per class, not per
//!   block), with [`simulate_reference`] retained as the per-block oracle
//!   the fast path is pinned bit-identical against;
//! * [`simulate_functional`] — the same walk actually computing the
//!   convolution in Q8.8 (validated against the reference loop nest);
//! * [`simulate_traced`] / [`trace`] — the counting walk plus an
//!   [`ExecutionTrace`]: per-class stall/compute timelines (JSON- and
//!   VCD-renderable) whose interval sums are pinned bit-identical to the
//!   [`SimStats`] they ship with.
//!
//! # Example
//!
//! ```
//! use accel_sim::{simulate, ArchConfig};
//! use conv_model::ConvLayer;
//! use dataflow::Tiling;
//!
//! let layer = ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap();
//! let tiling = Tiling::clamped(&layer, 1, 8, 6, 6);
//! let stats = simulate(&layer, &tiling, &ArchConfig::example()).unwrap();
//! assert_eq!(stats.useful_macs, layer.macs());
//! ```

#![deny(missing_docs)]
#![deny(rustdoc::broken_intra_doc_links)]

mod config;
mod engine;
pub mod mapping;
pub mod microarch;
mod stats;
pub mod trace;

pub use config::{caps, ArchCacheKey, ArchConfig, DramConfig};
pub use engine::{
    block_grid, effective_memory, simulate, simulate_functional, simulate_reference,
    simulate_traced, SimError,
};
pub use stats::{DramCounters, GbufCounters, RegCounters, SimStats, Utilization};
pub use trace::{ExecutionTrace, TraceBlock, TraceClass, TraceOptions, TracePhase, TraceSegment};
