//! Workload mapping of one output block onto the PE array
//! (Section IV-B, Fig. 8/9).
//!
//! A block of `b'·z'·y'·x'` outputs is mapped so that:
//!
//! * the `q` PE **columns** partition the `z'` output channels — each PE
//!   computes `zs = ⌈z'/q⌉` channels (stride-`q` interleaved, Fig. 11);
//! * the `p` PE **rows** partition the `b'·y'·x'` spatial positions — each
//!   PE row owns an `xs×ys` sub-tile of `⌈b'/pb⌉` images;
//! * every PE therefore produces `positions·zs ≤ r` Psums in its LRegs;
//! * each PE row's GReg segment holds the `xs'·ys'` input halo for its
//!   sub-tile, bounded by the segment capacity.
//!
//! The row-grid factorisation `(pb, py, px)` is chosen to minimise the halo
//! overhead (extra GBuf input reads) among all feasible factorisations.

use conv_model::ConvLayer;
use serde::{Deserialize, Serialize};

use crate::config::ArchConfig;

/// Clamped sizes and origin of one output block of the Fig. 7 loop nest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Block {
    /// First image index.
    pub i0: usize,
    /// Images in this block (`b'`).
    pub b: usize,
    /// First output channel.
    pub z0: usize,
    /// Output channels in this block (`z'`).
    pub z: usize,
    /// First output row.
    pub y0: usize,
    /// Output rows (`y'`).
    pub y: usize,
    /// First output column.
    pub x0: usize,
    /// Output columns (`x'`).
    pub x: usize,
}

impl Block {
    /// Psum words this block keeps on chip.
    #[must_use]
    pub fn psum_words(&self) -> u64 {
        (self.b * self.z * self.y * self.x) as u64
    }
}

/// How one block is executed by the PE array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct Mapping {
    /// Channels per PE (`zs`).
    pub zs: usize,
    /// Row-grid factor over images.
    pub pb: usize,
    /// Row-grid factor over output rows.
    pub py: usize,
    /// Row-grid factor over output columns.
    pub px: usize,
    /// Output rows per PE row (`ys`).
    pub ys: usize,
    /// Output columns per PE row (`xs`).
    pub xs: usize,
    /// Images per PE row.
    pub images_per_row: usize,
    /// Spatial positions owned by one PE row (`images_per_row·ys·xs`).
    pub positions: usize,
    /// Input words resident in one PE row's GReg segment at a time.
    ///
    /// When the full `images_per_row·xs'·ys'` window fits the segment, this
    /// is that window (full sliding-window reuse across all `Wk·Hk`
    /// passes). When it does not, the mapping falls back to per-kernel-row
    /// streaming and this holds one kernel row's worth.
    pub segment_words: usize,
    /// Input words streamed from the IGBuf into one segment per input
    /// channel over a whole iteration. Equals `segment_words` with full
    /// window residency; larger under per-kernel-row streaming (cross-row
    /// window reuse is lost).
    pub segment_stream_words: usize,
}

impl Mapping {
    /// PE rows actually used (`pb·py·px`).
    #[must_use]
    pub fn rows_used(&self) -> usize {
        self.pb * self.py * self.px
    }

    /// Cycles of one pass: every PE updates each of its Psums once.
    #[must_use]
    pub fn pass_cycles(&self) -> u64 {
        (self.positions * self.zs) as u64
    }

    /// Psum LReg entries used per PE.
    #[must_use]
    pub fn lregs_used(&self) -> usize {
        self.positions * self.zs
    }
}

/// Why a block cannot be mapped onto the array.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum MapError {
    /// No row-grid factorisation satisfies the LReg capacity.
    LregOverflow {
        /// Entries needed by the least-demanding factorisation.
        needed: usize,
        /// Entries available per PE.
        available: usize,
    },
    /// The input halo of every feasible sub-tile exceeds the GReg segment.
    SegmentOverflow {
        /// Words needed by the best factorisation.
        needed: usize,
        /// Segment capacity in words.
        available: usize,
    },
}

impl std::fmt::Display for MapError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MapError::LregOverflow { needed, available } => write!(
                f,
                "block needs {needed} Psum entries per PE but LRegs hold {available}"
            ),
            MapError::SegmentOverflow { needed, available } => write!(
                f,
                "input halo needs {needed} GReg words but segments hold {available}"
            ),
        }
    }
}

impl std::error::Error for MapError {}

fn factor_triples(p: usize) -> Vec<(usize, usize, usize)> {
    let mut out = Vec::new();
    for pb in 1..=p {
        if !p.is_multiple_of(pb) {
            continue;
        }
        let rest = p / pb;
        for py in 1..=rest {
            if !rest.is_multiple_of(py) {
                continue;
            }
            out.push((pb, py, rest / py));
        }
    }
    out
}

/// Maps a block onto the array, minimising halo overhead among feasible
/// row-grid factorisations.
///
/// # Errors
///
/// Returns [`MapError`] when no factorisation fits the LRegs or the GReg
/// segments.
pub fn map_block(arch: &ArchConfig, layer: &ConvLayer, block: &Block) -> Result<Mapping, MapError> {
    let zs = block.z.div_ceil(arch.pe_cols);
    let mut best: Option<(u64, Mapping)> = None;
    let mut least_lregs = usize::MAX;
    let mut least_segment = usize::MAX;

    for (pb, py, px) in factor_triples(arch.pe_rows) {
        let images_per_row = block.b.div_ceil(pb);
        let ys = block.y.div_ceil(py);
        let xs = block.x.div_ceil(px);
        let positions = images_per_row * ys * xs;
        let lregs = positions * zs;
        least_lregs = least_lregs.min(lregs);
        if lregs > arch.lreg_entries_per_pe {
            continue;
        }
        let (xsp, ysp) = layer.input_footprint(xs, ys);
        let window = images_per_row * xsp * ysp;
        let (segment_words, segment_stream_words) = if window <= arch.greg_segment_entries {
            (window, window)
        } else {
            // Per-kernel-row fallback: keep one kernel row's rows resident,
            // re-streaming from the IGBuf for each of the Hk passes.
            let rows_per_ky = (ys - 1) * layer.stride() + 1;
            let per_ky = images_per_row * xsp * rows_per_ky;
            least_segment = least_segment.min(per_ky);
            if per_ky > arch.greg_segment_entries {
                continue;
            }
            (per_ky, layer.kernel_height() * per_ky)
        };
        least_segment = least_segment.min(segment_words);
        // Halo overhead: total input words the row segments stream per
        // input channel. Fewer is better; tie-break on fewer wasted Psum
        // slots.
        let rows = pb * py * px;
        let cost = (rows * segment_stream_words) as u64;
        let mapping = Mapping {
            zs,
            pb,
            py,
            px,
            ys,
            xs,
            images_per_row,
            positions,
            segment_words,
            segment_stream_words,
        };
        match &best {
            Some((c, m)) if *c < cost || (*c == cost && m.lregs_used() <= mapping.lregs_used()) => {
            }
            _ => best = Some((cost, mapping)),
        }
    }

    best.map(|(_, m)| m).ok_or({
        if least_lregs > arch.lreg_entries_per_pe {
            MapError::LregOverflow {
                needed: least_lregs,
                available: arch.lreg_entries_per_pe,
            }
        } else {
            MapError::SegmentOverflow {
                needed: least_segment,
                available: arch.greg_segment_entries,
            }
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn layer() -> ConvLayer {
        ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap()
    }

    fn block(b: usize, z: usize, y: usize, x: usize) -> Block {
        Block {
            i0: 0,
            b,
            z0: 0,
            z,
            y0: 0,
            y,
            x0: 0,
            x,
        }
    }

    #[test]
    fn small_block_maps() {
        let arch = ArchConfig::example();
        let m = map_block(&arch, &layer(), &block(1, 64, 20, 20)).unwrap();
        assert_eq!(m.zs, 4);
        assert!(m.lregs_used() <= arch.lreg_entries_per_pe);
        assert!(m.segment_words <= arch.greg_segment_entries);
        assert!(m.rows_used() <= arch.pe_rows);
    }

    #[test]
    fn pass_cycles_is_positions_times_zs() {
        let arch = ArchConfig::example();
        let m = map_block(&arch, &layer(), &block(1, 64, 16, 16)).unwrap();
        assert_eq!(m.pass_cycles(), (m.positions * m.zs) as u64);
    }

    #[test]
    fn oversized_block_fails_with_lreg_overflow() {
        let arch = ArchConfig::example();
        // 256 channels (zs=16) × a huge plane cannot fit 128 LRegs/PE.
        let err = map_block(&arch, &layer(), &block(3, 256, 56, 56)).unwrap_err();
        assert!(matches!(err, MapError::LregOverflow { .. }), "{err}");
    }

    #[test]
    fn factorisations_cover_whole_array() {
        for (pb, py, px) in factor_triples(16) {
            assert_eq!(pb * py * px, 16);
        }
        assert!(factor_triples(16).len() >= 10);
    }

    #[test]
    fn mapping_prefers_low_halo() {
        // A 16x16 spatial block on 16 rows: the minimal-halo split is 4x4
        // sub-tiles (perimeter/area best for squares).
        let arch = ArchConfig::example();
        let m = map_block(&arch, &layer(), &block(1, 16, 16, 16)).unwrap();
        assert_eq!((m.py, m.px), (4, 4), "mapping {m:?}");
        assert_eq!((m.ys, m.xs), (4, 4));
        // halo 6*6=36 words per segment
        assert_eq!(m.segment_words, 36);
    }

    #[test]
    fn batch_distributes_across_rows() {
        let arch = ArchConfig::example();
        let m = map_block(&arch, &layer(), &block(3, 32, 8, 8)).unwrap();
        // Using pb>1 lets rows share the batch.
        assert!(m.images_per_row <= 3);
        assert!(m.positions * m.zs <= arch.lreg_entries_per_pe);
    }
}
