//! Access counters and derived metrics collected by the simulator.

use conv_model::BYTES_PER_WORD;
use serde::{Deserialize, Serialize};

/// DRAM access counters in 16-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct DramCounters {
    /// Input words read.
    pub input_reads: u64,
    /// Weight words read.
    pub weight_reads: u64,
    /// Output words written.
    pub output_writes: u64,
}

impl DramCounters {
    /// Total DRAM words moved.
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.input_reads + self.weight_reads + self.output_writes
    }

    /// Total DRAM bytes moved.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_words() * BYTES_PER_WORD
    }
}

/// GBuf (on-chip SRAM) access counters in 16-bit words.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct GbufCounters {
    /// Words written into the input GBuf (from DRAM).
    pub input_writes: u64,
    /// Words read from the input GBuf (to input GRegs).
    pub input_reads: u64,
    /// Words written into the weight GBuf (from DRAM).
    pub weight_writes: u64,
    /// Words read from the weight GBuf (to weight GRegs).
    pub weight_reads: u64,
}

impl GbufCounters {
    /// Total GBuf accesses (reads + writes).
    #[must_use]
    pub fn total_words(&self) -> u64 {
        self.input_writes + self.input_reads + self.weight_writes + self.weight_reads
    }

    /// Total GBuf bytes.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_words() * BYTES_PER_WORD
    }
}

/// Register access counters. Following Section IV-B2, register
/// *communication* is counted in writes; reads feed combinational MUX/MAC
/// paths.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct RegCounters {
    /// Psum writes into PE-local LRegs (one per issued MAC slot).
    pub lreg_writes: u64,
    /// Input words written into GReg segments (including duplicated copies).
    pub greg_input_writes: u64,
    /// Weight words written into GReg rows (including duplicated copies).
    pub greg_weight_writes: u64,
}

impl RegCounters {
    /// Total register writes — the Fig. 17 "Reg access volume".
    #[must_use]
    pub fn total_writes(&self) -> u64 {
        self.lreg_writes + self.greg_input_writes + self.greg_weight_writes
    }

    /// Total register bytes written.
    #[must_use]
    pub fn total_bytes(&self) -> u64 {
        self.total_writes() * BYTES_PER_WORD
    }
}

/// Average utilization figures in `[0, 1]` (Fig. 20).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Utilization {
    /// Fraction of GBuf entries holding live data, averaged over iterations.
    pub gbuf: f64,
    /// Fraction of GReg bytes holding live data.
    pub greg: f64,
    /// Fraction of LReg entries holding live Psums.
    pub lreg: f64,
    /// Capacity-weighted overall on-chip memory utilization.
    pub memory_overall: f64,
    /// Useful MACs over issued PE slots.
    pub pe: f64,
}

/// Everything the simulator measures for one layer execution.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct SimStats {
    /// DRAM traffic.
    pub dram: DramCounters,
    /// GBuf traffic.
    pub gbuf: GbufCounters,
    /// Register traffic.
    pub reg: RegCounters,
    /// Useful multiply-accumulates performed.
    pub useful_macs: u64,
    /// PE×cycle slots issued (lockstep execution, including padding work).
    pub issued_slots: u64,
    /// Cycles spent computing.
    pub compute_cycles: u64,
    /// Cycles stalled waiting for DRAM (not overlapped by compute).
    pub stall_cycles: u64,
    /// Number of output blocks (outer iterations of Fig. 7).
    pub blocks: u64,
    /// Number of GBuf-load iterations (blocks × input channels at k = 1).
    pub iterations: u64,
    /// Utilization averages.
    pub utilization: Utilization,
}

impl SimStats {
    /// Total execution cycles (compute + unoverlapped memory stalls).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.compute_cycles + self.stall_cycles
    }

    /// Execution time in seconds at the given core frequency.
    #[must_use]
    pub fn seconds(&self, core_freq_hz: f64) -> f64 {
        self.total_cycles() as f64 / core_freq_hz
    }

    /// Adds another layer's stats into this one (utilizations are averaged
    /// weighted by compute cycles).
    #[must_use]
    pub fn combined(&self, other: &SimStats) -> SimStats {
        let w1 = self.compute_cycles as f64;
        let w2 = other.compute_cycles as f64;
        // With zero compute cycles on both sides there is nothing to
        // weight by: report zeroed utilization explicitly instead of
        // dividing by a fabricated weight (under which a NaN utilization
        // value would still poison the 0/1 average).
        let wt = w1 + w2;
        let avg = |a: f64, b: f64| {
            if wt > 0.0 {
                (a * w1 + b * w2) / wt
            } else {
                0.0
            }
        };
        SimStats {
            dram: DramCounters {
                input_reads: self.dram.input_reads + other.dram.input_reads,
                weight_reads: self.dram.weight_reads + other.dram.weight_reads,
                output_writes: self.dram.output_writes + other.dram.output_writes,
            },
            gbuf: GbufCounters {
                input_writes: self.gbuf.input_writes + other.gbuf.input_writes,
                input_reads: self.gbuf.input_reads + other.gbuf.input_reads,
                weight_writes: self.gbuf.weight_writes + other.gbuf.weight_writes,
                weight_reads: self.gbuf.weight_reads + other.gbuf.weight_reads,
            },
            reg: RegCounters {
                lreg_writes: self.reg.lreg_writes + other.reg.lreg_writes,
                greg_input_writes: self.reg.greg_input_writes + other.reg.greg_input_writes,
                greg_weight_writes: self.reg.greg_weight_writes + other.reg.greg_weight_writes,
            },
            useful_macs: self.useful_macs + other.useful_macs,
            issued_slots: self.issued_slots + other.issued_slots,
            compute_cycles: self.compute_cycles + other.compute_cycles,
            stall_cycles: self.stall_cycles + other.stall_cycles,
            blocks: self.blocks + other.blocks,
            iterations: self.iterations + other.iterations,
            utilization: Utilization {
                gbuf: avg(self.utilization.gbuf, other.utilization.gbuf),
                greg: avg(self.utilization.greg, other.utilization.greg),
                lreg: avg(self.utilization.lreg, other.utilization.lreg),
                memory_overall: avg(
                    self.utilization.memory_overall,
                    other.utilization.memory_overall,
                ),
                pe: avg(self.utilization.pe, other.utilization.pe),
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_total() {
        let d = DramCounters {
            input_reads: 3,
            weight_reads: 4,
            output_writes: 5,
        };
        assert_eq!(d.total_words(), 12);
        assert_eq!(d.total_bytes(), 24);
        let g = GbufCounters {
            input_writes: 1,
            input_reads: 2,
            weight_writes: 3,
            weight_reads: 4,
        };
        assert_eq!(g.total_words(), 10);
        let r = RegCounters {
            lreg_writes: 100,
            greg_input_writes: 10,
            greg_weight_writes: 1,
        };
        assert_eq!(r.total_writes(), 111);
    }

    #[test]
    fn combine_sums_and_averages() {
        let a = SimStats {
            compute_cycles: 100,
            useful_macs: 50,
            utilization: Utilization {
                pe: 1.0,
                ..Utilization::default()
            },
            ..SimStats::default()
        };
        let b = SimStats {
            compute_cycles: 300,
            useful_macs: 70,
            utilization: Utilization {
                pe: 0.5,
                ..Utilization::default()
            },
            ..SimStats::default()
        };
        let c = a.combined(&b);
        assert_eq!(c.compute_cycles, 400);
        assert_eq!(c.useful_macs, 120);
        // Weighted: (1.0*100 + 0.5*300)/400 = 0.625
        assert!((c.utilization.pe - 0.625).abs() < 1e-12);
    }

    #[test]
    fn combine_zero_compute_zeroes_utilization() {
        // Both sides report zero compute cycles (e.g. two empty/degenerate
        // aggregations): the combined utilization must be exactly zero on
        // every field — even when the inputs carry nonzero (or NaN)
        // utilization values — not the output of an average weighted by a
        // fabricated minimum weight.
        let a = SimStats {
            compute_cycles: 0,
            utilization: Utilization {
                gbuf: 0.7,
                greg: 0.6,
                lreg: 0.5,
                memory_overall: f64::NAN,
                pe: 0.9,
            },
            ..SimStats::default()
        };
        let b = SimStats {
            compute_cycles: 0,
            utilization: Utilization {
                pe: 1.0,
                ..Utilization::default()
            },
            ..SimStats::default()
        };
        let c = a.combined(&b);
        let u = c.utilization;
        for v in [u.gbuf, u.greg, u.lreg, u.memory_overall, u.pe] {
            assert_eq!(v.to_bits(), 0.0f64.to_bits(), "expected +0.0, got {v}");
        }
        // Nonzero weights on either side still average as before.
        let d = SimStats {
            compute_cycles: 10,
            utilization: Utilization {
                pe: 0.5,
                ..Utilization::default()
            },
            ..SimStats::default()
        };
        assert!((b.combined(&d).utilization.pe - 0.5).abs() < 1e-12);
    }

    #[test]
    fn seconds_at_frequency() {
        let s = SimStats {
            compute_cycles: 500_000_000,
            stall_cycles: 0,
            ..SimStats::default()
        };
        assert!((s.seconds(500e6) - 1.0).abs() < 1e-12);
    }
}
