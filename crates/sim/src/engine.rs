//! The cycle-level simulation engine.
//!
//! Executes the Fig. 7 loop nest on the Fig. 10 architecture, counting every
//! DRAM/GBuf/GReg/LReg access, every issued PE slot and every cycle,
//! including DRAM stall cycles that prefetching cannot hide. The counting
//! walk and the functional walk share the same block grid and mapping, so
//! the numbers always describe the computation that
//! [`simulate_functional`] actually performs.

use comm_bound::OnChipMemory;
use conv_model::fixed::{Acc32, Q8_8};
use conv_model::{ConvLayer, Tensor4};
use dataflow::Tiling;

use crate::config::ArchConfig;
use crate::mapping::{map_block, Block, MapError, Mapping};
use crate::stats::{SimStats, Utilization};

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A block could not be mapped onto the PE array.
    Unmappable(MapError),
    /// The weight tile exceeds the weight GBuf.
    WeightTileTooLarge {
        /// Channels per tile requested.
        z: usize,
        /// WGBuf capacity in entries.
        capacity: usize,
    },
    /// The input tile (with halo) exceeds the input GBuf.
    InputTileTooLarge {
        /// Words needed.
        needed: usize,
        /// IGBuf capacity in entries.
        capacity: usize,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unmappable(e) => write!(f, "unmappable block: {e}"),
            SimError::WeightTileTooLarge { z, capacity } => {
                write!(f, "weight tile z={z} exceeds WGBuf capacity {capacity}")
            }
            SimError::InputTileTooLarge { needed, capacity } => {
                write!(f, "input tile needs {needed} words, IGBuf holds {capacity}")
            }
        }
    }
}

impl std::error::Error for SimError {}

impl From<MapError> for SimError {
    fn from(e: MapError) -> Self {
        SimError::Unmappable(e)
    }
}

/// Enumerates the output blocks of the Fig. 7 loop nest for a tiling, in
/// execution order.
#[must_use]
pub fn block_grid(layer: &ConvLayer, tiling: &Tiling) -> Vec<Block> {
    let mut blocks = Vec::new();
    let mut i0 = 0;
    while i0 < layer.batch() {
        let b = tiling.b.min(layer.batch() - i0);
        let mut z0 = 0;
        while z0 < layer.out_channels() {
            let z = tiling.z.min(layer.out_channels() - z0);
            let mut y0 = 0;
            while y0 < layer.output_height() {
                let y = tiling.y.min(layer.output_height() - y0);
                let mut x0 = 0;
                while x0 < layer.output_width() {
                    let x = tiling.x.min(layer.output_width() - x0);
                    blocks.push(Block {
                        i0,
                        b,
                        z0,
                        z,
                        y0,
                        y,
                        x0,
                        x,
                    });
                    x0 += tiling.x;
                }
                y0 += tiling.y;
            }
            z0 += tiling.z;
        }
        i0 += tiling.b;
    }
    blocks
}

/// Clipped input extent (words) of a block along one axis: the rows/columns
/// actually fetched from DRAM (padding contributes nothing).
fn clipped_extent(
    o0: usize,
    len: usize,
    stride: usize,
    kernel: usize,
    pad: usize,
    in_dim: usize,
) -> u64 {
    let lo = (o0 * stride) as isize - pad as isize;
    let hi = ((o0 + len - 1) * stride + kernel - 1) as isize - pad as isize;
    let lo = lo.max(0);
    let hi = hi.min(in_dim as isize - 1);
    if hi >= lo {
        (hi - lo + 1) as u64
    } else {
        0
    }
}

struct BlockCounts {
    dram_input_reads: u64,
    dram_weight_reads: u64,
    dram_output_writes: u64,
    gbuf_input_writes: u64,
    gbuf_input_reads: u64,
    gbuf_weight_writes: u64,
    gbuf_weight_reads: u64,
    greg_input_writes: u64,
    greg_weight_writes: u64,
    lreg_writes: u64,
    useful_macs: u64,
    issued_slots: u64,
    compute_cycles: u64,
    // utilization snapshots, weighted later by compute cycles
    lreg_util: f64,
    gbuf_util: f64,
    greg_util: f64,
}

fn count_block(
    arch: &ArchConfig,
    layer: &ConvLayer,
    block: &Block,
    mapping: &Mapping,
) -> Result<BlockCounts, SimError> {
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    let pad = layer.padding();

    if block.z > arch.wgbuf_entries {
        return Err(SimError::WeightTileTooLarge {
            z: block.z,
            capacity: arch.wgbuf_entries,
        });
    }
    // Nominal (unclipped) halo of the whole block: what the IGBuf must hold
    // per input channel, and what gets written into it (boundary blocks
    // write a few redundant slots — Table IV's 1.15×).
    let (xh, yh) = layer.input_footprint(block.x, block.y);
    let igbuf_needed = block.b * xh * yh;
    if igbuf_needed > arch.igbuf_entries {
        return Err(SimError::InputTileTooLarge {
            needed: igbuf_needed,
            capacity: arch.igbuf_entries,
        });
    }

    let clip_x = clipped_extent(
        block.x0,
        block.x,
        layer.stride(),
        layer.kernel_width(),
        pad.horizontal,
        layer.in_width(),
    );
    let clip_y = clipped_extent(
        block.y0,
        block.y,
        layer.stride(),
        layer.kernel_height(),
        pad.vertical,
        layer.in_height(),
    );

    let dram_input_reads = block.b as u64 * clip_x * clip_y * ci;
    let dram_weight_reads = block.z as u64 * taps * ci;
    let dram_output_writes = block.psum_words();

    let rows_used = mapping.rows_used() as u64;
    let cols_used = block.z.div_ceil(mapping.zs).min(arch.pe_cols) as u64;
    let input_copies = (arch.pe_cols / arch.group_cols) as u64;
    let weight_copies = (arch.pe_rows / arch.group_rows) as u64;

    let gbuf_input_reads = rows_used * mapping.segment_stream_words as u64 * ci;
    let gbuf_weight_reads = block.z as u64 * taps * ci;

    let pass_cycles = mapping.pass_cycles();
    let compute_cycles = ci * taps * pass_cycles;
    let issued_slots = rows_used * cols_used * pass_cycles * taps * ci;
    let useful_macs = block.psum_words() * taps * ci;

    // Utilization snapshots.
    let lreg_util = block.psum_words() as f64 / arch.lreg_total_entries() as f64;
    let gbuf_util = ((igbuf_needed.min(arch.igbuf_entries) + block.z.min(arch.wgbuf_entries))
        as f64)
        / (arch.igbuf_entries + arch.wgbuf_entries) as f64;
    let greg_used_bytes = (rows_used * mapping.segment_words as u64 * input_copies
        + weight_copies * block.z as u64) as f64
        * 2.0;
    let greg_util = (greg_used_bytes / arch.greg_bytes as f64).min(1.0);

    Ok(BlockCounts {
        dram_input_reads,
        dram_weight_reads,
        dram_output_writes,
        gbuf_input_writes: block.b as u64 * xh as u64 * yh as u64 * ci,
        gbuf_input_reads,
        gbuf_weight_writes: dram_weight_reads,
        gbuf_weight_reads,
        greg_input_writes: gbuf_input_reads * input_copies,
        greg_weight_writes: weight_copies * block.z as u64 * taps * ci,
        lreg_writes: issued_slots,
        useful_macs,
        issued_slots,
        compute_cycles,
        lreg_util,
        gbuf_util,
        greg_util,
    })
}

/// Runs the counting simulation of one layer under one tiling.
///
/// # Errors
///
/// Returns [`SimError`] when a block exceeds the GBufs or cannot be mapped
/// onto the PE array; use `clb_core::plan_for_arch` to obtain a feasible
/// tiling.
pub fn simulate(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
) -> Result<SimStats, SimError> {
    arch.validate()
        .map_err(|_| SimError::WeightTileTooLarge { z: 0, capacity: 0 })?;
    let blocks = block_grid(layer, tiling);
    let words_per_cycle = arch.dram_words_per_cycle();

    let mut stats = SimStats::default();
    let mut util_w = 0.0f64;
    let mut util = Utilization::default();

    for block in &blocks {
        let mapping = map_block(arch, layer, block)?;
        let c = count_block(arch, layer, block, &mapping)?;

        stats.dram.input_reads += c.dram_input_reads;
        stats.dram.weight_reads += c.dram_weight_reads;
        stats.dram.output_writes += c.dram_output_writes;
        stats.gbuf.input_writes += c.gbuf_input_writes;
        stats.gbuf.input_reads += c.gbuf_input_reads;
        stats.gbuf.weight_writes += c.gbuf_weight_writes;
        stats.gbuf.weight_reads += c.gbuf_weight_reads;
        stats.reg.greg_input_writes += c.greg_input_writes;
        stats.reg.greg_weight_writes += c.greg_weight_writes;
        stats.reg.lreg_writes += c.lreg_writes;
        stats.useful_macs += c.useful_macs;
        stats.issued_slots += c.issued_slots;
        stats.compute_cycles += c.compute_cycles;
        stats.blocks += 1;
        stats.iterations += layer.in_channels() as u64;

        // Timing: the GBufs double-buffer at iteration (kz) granularity
        // (Section V: "the GBufs are used for prefetching inputs and
        // weights for the subsequent pass"), so each iteration's transfer
        // overlaps that iteration's compute; the unhidden remainder stalls.
        // The output write-back and the first-access latency are charged
        // once per block.
        let ci_u = layer.in_channels() as u64;
        let words_per_kz = (c.dram_input_reads + c.dram_weight_reads) / ci_u;
        let transfer_kz = (words_per_kz as f64 / words_per_cycle).ceil() as u64;
        let compute_kz = c.compute_cycles / ci_u;
        let writeback = (c.dram_output_writes as f64 / words_per_cycle).ceil() as u64;
        let stall = ci_u * transfer_kz.saturating_sub(compute_kz)
            + writeback.saturating_sub(compute_kz)
            + arch.dram.latency_cycles;
        stats.stall_cycles += stall;

        let w = c.compute_cycles as f64;
        util_w += w;
        util.lreg += c.lreg_util * w;
        util.gbuf += c.gbuf_util * w;
        util.greg += c.greg_util * w;
        util.pe += (c.useful_macs as f64 / c.issued_slots.max(1) as f64) * w;
    }

    if util_w > 0.0 {
        util.lreg /= util_w;
        util.gbuf /= util_w;
        util.greg /= util_w;
        util.pe /= util_w;
        let lreg_b = (arch.lreg_total_entries() * 2) as f64;
        let gbuf_b = arch.gbuf_bytes() as f64;
        let greg_b = arch.greg_bytes as f64;
        util.memory_overall = (util.lreg * lreg_b + util.gbuf * gbuf_b + util.greg * greg_b)
            / (lreg_b + gbuf_b + greg_b);
    }
    stats.utilization = util;
    Ok(stats)
}

/// Runs the *functional* simulation: identical blocking and mapping, but the
/// MACs are actually performed in Q8.8 with 32-bit accumulation, producing
/// the layer output.
///
/// Returns the output tensor together with the same [`SimStats`] that
/// [`simulate`] reports.
///
/// # Errors
///
/// Same conditions as [`simulate`].
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `layer`.
pub fn simulate_functional(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
    input: &Tensor4<Q8_8>,
    weights: &Tensor4<Q8_8>,
) -> Result<(Tensor4<Q8_8>, SimStats), SimError> {
    assert_eq!(
        input.shape(),
        (
            layer.batch(),
            layer.in_channels(),
            layer.in_height(),
            layer.in_width()
        ),
        "input tensor shape does not match layer"
    );
    assert_eq!(
        weights.shape(),
        (
            layer.out_channels(),
            layer.in_channels(),
            layer.kernel_height(),
            layer.kernel_width()
        ),
        "weight tensor shape does not match layer"
    );

    let stats = simulate(layer, tiling, arch)?;
    let mut out = Tensor4::zeros(
        layer.batch(),
        layer.out_channels(),
        layer.output_height(),
        layer.output_width(),
    );
    let pad = layer.padding();
    let stride = layer.stride();

    for block in block_grid(layer, tiling) {
        // The block's Psums live in LRegs (Acc32 per slot) for the whole
        // iteration sequence over kz and kernel taps — exactly the OutR
        // schedule of Fig. 7.
        let mut acc = vec![Acc32::ZERO; block.b * block.z * block.y * block.x];
        for kz in 0..layer.in_channels() {
            for ky in 0..layer.kernel_height() {
                for kx in 0..layer.kernel_width() {
                    // One pass: every Psum of the block updated once.
                    let mut slot = 0usize;
                    for ib in 0..block.b {
                        for iz in 0..block.z {
                            for iy in 0..block.y {
                                for ix in 0..block.x {
                                    let oy = block.y0 + iy;
                                    let ox = block.x0 + ix;
                                    let i = block.i0 + ib;
                                    let oz = block.z0 + iz;
                                    let yy = (oy * stride + ky) as isize - pad.vertical as isize;
                                    let xx = (ox * stride + kx) as isize - pad.horizontal as isize;
                                    if yy >= 0
                                        && xx >= 0
                                        && (yy as usize) < layer.in_height()
                                        && (xx as usize) < layer.in_width()
                                    {
                                        let a = input[(i, kz, yy as usize, xx as usize)];
                                        let w = weights[(oz, kz, ky, kx)];
                                        acc[slot] = acc[slot].mac(a, w);
                                    }
                                    slot += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Write the finished block back to DRAM (saturating to 16 bits).
        let mut slot = 0usize;
        for ib in 0..block.b {
            for iz in 0..block.z {
                for iy in 0..block.y {
                    for ix in 0..block.x {
                        out[(block.i0 + ib, block.z0 + iz, block.y0 + iy, block.x0 + ix)] =
                            acc[slot].to_q8_8();
                        slot += 1;
                    }
                }
            }
        }
    }
    Ok((out, stats))
}

/// The effective on-chip memory of an architecture as an [`OnChipMemory`],
/// for plugging simulator configs into the analytic bounds.
#[must_use]
pub fn effective_memory(arch: &ArchConfig) -> OnChipMemory {
    OnChipMemory::from_words(arch.effective_onchip_words() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_layer() -> ConvLayer {
        ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap()
    }

    fn small_tiling(layer: &ConvLayer) -> Tiling {
        Tiling::clamped(layer, 1, 8, 6, 6)
    }

    #[test]
    fn block_grid_covers_outputs_exactly() {
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let blocks = block_grid(&layer, &tiling);
        let total: u64 = blocks.iter().map(Block::psum_words).sum();
        assert_eq!(total, layer.output_words());
    }

    #[test]
    fn block_grid_handles_non_dividing_tiles() {
        let layer = small_layer();
        let tiling = Tiling::clamped(&layer, 1, 5, 5, 5);
        let blocks = block_grid(&layer, &tiling);
        let total: u64 = blocks.iter().map(Block::psum_words).sum();
        assert_eq!(total, layer.output_words());
        // 8 channels in tiles of 5 -> 2 tiles; 12 in tiles of 5 -> 3.
        assert_eq!(blocks.len(), 2 * 3 * 3);
    }

    #[test]
    fn simulation_counts_match_dataflow_model() {
        // The simulator's DRAM counters must equal the analytic Eq. 14
        // traffic for the same tiling.
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let arch = ArchConfig::example();
        let stats = simulate(&layer, &tiling, &arch).unwrap();
        let analytic = dataflow::our_dataflow_traffic(&layer, &tiling);
        assert_eq!(stats.dram.input_reads, analytic.input_reads);
        assert_eq!(stats.dram.weight_reads, analytic.weight_reads);
        assert_eq!(stats.dram.output_writes, analytic.output_writes);
    }

    #[test]
    fn weights_read_once_from_gbuf() {
        // Table IV: GBuf weight reads == DRAM weight reads (ratio 1.00).
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        assert_eq!(stats.gbuf.weight_reads, stats.dram.weight_reads);
        assert_eq!(stats.gbuf.weight_writes, stats.dram.weight_reads);
    }

    #[test]
    fn gbuf_input_reads_include_halos() {
        // Table IV: input GBuf reads exceed DRAM input reads (halo factor).
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        assert!(stats.gbuf.input_reads >= stats.dram.input_reads);
        // A 6x6 block split across 16 PE rows has a large per-row halo; the
        // network-scale halo factor (~1.7x, Table IV) is checked in the
        // workspace integration tests on realistic layers.
        assert!(stats.gbuf.input_reads < 8 * stats.dram.input_reads);
    }

    #[test]
    fn lreg_writes_at_least_macs() {
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        assert!(stats.reg.lreg_writes >= layer.macs());
        assert_eq!(stats.useful_macs, layer.macs());
    }

    #[test]
    fn functional_matches_acc32_reference() {
        let layer = small_layer();
        let input = Tensor4::from_fn(1, 4, 12, 12, |_, c, h, w| {
            Q8_8::from_f64(((c + h * w) % 7) as f64 * 0.25 - 0.75)
        });
        let weights = Tensor4::from_fn(8, 4, 3, 3, |n, c, h, w| {
            Q8_8::from_f64(((n + c + h + w) % 5) as f64 * 0.125 - 0.25)
        });
        let (out, _) = simulate_functional(
            &layer,
            &small_tiling(&layer),
            &ArchConfig::example(),
            &input,
            &weights,
        )
        .unwrap();

        // Reference: direct Acc32 accumulation in the canonical loop order.
        let pad = layer.padding();
        for i in 0..1 {
            for oz in 0..8 {
                for oy in 0..12 {
                    for ox in 0..12 {
                        let mut acc = Acc32::ZERO;
                        for kz in 0..4 {
                            for ky in 0..3 {
                                for kx in 0..3 {
                                    let yy = (oy + ky) as isize - pad.vertical as isize;
                                    let xx = (ox + kx) as isize - pad.horizontal as isize;
                                    if yy >= 0
                                        && xx >= 0
                                        && (yy as usize) < 12
                                        && (xx as usize) < 12
                                    {
                                        acc = acc.mac(
                                            input[(i, kz, yy as usize, xx as usize)],
                                            weights[(oz, kz, ky, kx)],
                                        );
                                    }
                                }
                            }
                        }
                        assert_eq!(out[(i, oz, oy, ox)], acc.to_q8_8(), "at {oz},{oy},{ox}");
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_weight_tile_rejected() {
        let layer = ConvLayer::square(1, 512, 8, 8, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 512, 2, 2);
        let err = simulate(&layer, &tiling, &ArchConfig::example()).unwrap_err();
        assert!(matches!(err, SimError::WeightTileTooLarge { .. }));
    }

    #[test]
    fn oversized_input_tile_rejected() {
        let layer = ConvLayer::square(1, 8, 64, 8, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 1, 64, 64);
        let err = simulate(&layer, &tiling, &ArchConfig::example()).unwrap_err();
        assert!(matches!(
            err,
            SimError::InputTileTooLarge { .. } | SimError::Unmappable(_)
        ));
    }

    #[test]
    fn stall_cycles_grow_with_slower_dram() {
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let fast = ArchConfig::example();
        let mut slow = fast;
        slow.dram.bandwidth_bytes_per_s = 1e8; // 64x slower
        let s_fast = simulate(&layer, &tiling, &fast).unwrap();
        let s_slow = simulate(&layer, &tiling, &slow).unwrap();
        assert!(s_slow.stall_cycles > s_fast.stall_cycles);
        assert_eq!(s_slow.compute_cycles, s_fast.compute_cycles);
    }

    #[test]
    fn utilizations_in_unit_interval() {
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        let u = stats.utilization;
        for v in [u.gbuf, u.greg, u.lreg, u.memory_overall, u.pe] {
            assert!((0.0..=1.0).contains(&v), "utilization out of range: {v}");
        }
        assert!(u.pe > 0.5, "PE utilization should be high, got {}", u.pe);
    }
}
