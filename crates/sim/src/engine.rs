//! The cycle-level simulation engine.
//!
//! Executes the Fig. 7 loop nest on the Fig. 10 architecture, counting every
//! DRAM/GBuf/GReg/LReg access, every issued PE slot and every cycle,
//! including DRAM stall cycles that prefetching cannot hide. The counting
//! walk and the functional walk share the same block grid and mapping, so
//! the numbers always describe the computation that
//! [`simulate_functional`] actually performs.
//!
//! # Block equivalence classes
//!
//! A block's counts (the internal `BlockCounts`) depend only on its *shape
//! class*
//! `(b', z', y', x', clip_x, clip_y)` — the clamped tile sizes plus the
//! image-clipped input extents — never on its absolute grid position. Along
//! each axis the tile starts advance in fixed steps, so the clamped size
//! takes at most two values (interior, remainder) and the clipped extent at
//! most three in the common case (left-clipped edge, interior run,
//! right-clipped edge); arbitrary padding can add a few more, but never
//! more than the axis's tile count. [`simulate`] therefore collapses each
//! axis into runs of identical shape by run-length math, evaluates
//! `map_block` + `count_block` once per class (the cross product of axis
//! runs), and multiplies by the class multiplicity — O(dozens) mapping
//! walks instead of one per block, which for batch-64 networks removes tens
//! of thousands of redundant factorisation sweeps from the hot path behind
//! `plan`, `/v1/plan` and `/v1/network`.
//!
//! Aggregation is *integer-exact*: every counter accumulates in `u64`/
//! `u128`, and the floating-point utilization ratios are formed once from
//! the integer sums (`Accumulator::finalize`). Integer addition is
//! associative and multiplication by a multiplicity distributes exactly, so
//! the class path, the `rayon`-fanned per-block fallback (used when a
//! pathological grid barely collapses) and the retained serial reference
//! walk ([`simulate_reference`]) produce bit-identical [`SimStats`] — in
//! the spirit of hardware-counter validation work, the fast path is only
//! trusted because it is pinned bit-for-bit against the per-block oracle
//! (the `simulator_class_parity` property tests and the `sim_hotpath`
//! bench gate).

use comm_bound::OnChipMemory;
use conv_model::fixed::{Acc32, Q8_8};
use conv_model::{ConvLayer, Tensor4};
use dataflow::Tiling;

use crate::config::ArchConfig;
use crate::mapping::{map_block, Block, MapError, Mapping};
use crate::stats::{SimStats, Utilization};
use crate::trace::{
    caps as trace_caps, ClassObservation, ExecutionTrace, TraceBlock, TraceBuilder, TraceOptions,
};

/// Why a simulation could not run.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum SimError {
    /// A block could not be mapped onto the PE array.
    Unmappable(MapError),
    /// The weight tile exceeds the weight GBuf.
    WeightTileTooLarge {
        /// Channels per tile requested.
        z: usize,
        /// WGBuf capacity in entries.
        capacity: usize,
    },
    /// The input tile (with halo) exceeds the input GBuf.
    InputTileTooLarge {
        /// Words needed.
        needed: usize,
        /// IGBuf capacity in entries.
        capacity: usize,
    },
    /// The architecture fails its structural invariants
    /// ([`ArchConfig::validate`]); the message names the violated one.
    InvalidArch(String),
    /// The tiling has a zero or oversized dimension
    /// ([`Tiling::validate_for`]); the message names the offending field.
    InvalidTiling(String),
    /// A trace request exceeds one of the [`crate::trace::caps`] limits.
    /// Checked from the axis-run cardinalities *before* anything
    /// trace-sized is allocated, so an over-cap request costs O(axis runs).
    TraceTooLarge {
        /// The violated cap's name (`MAX_TRACE_CLASSES` / `MAX_TRACE_BLOCKS`).
        cap_name: &'static str,
        /// How many the request implies.
        have: u128,
        /// The cap's value.
        cap: u128,
    },
}

impl std::fmt::Display for SimError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SimError::Unmappable(e) => write!(f, "unmappable block: {e}"),
            SimError::WeightTileTooLarge { z, capacity } => {
                write!(f, "weight tile z={z} exceeds WGBuf capacity {capacity}")
            }
            SimError::InputTileTooLarge { needed, capacity } => {
                write!(f, "input tile needs {needed} words, IGBuf holds {capacity}")
            }
            SimError::InvalidArch(msg) => write!(f, "invalid architecture: {msg}"),
            SimError::InvalidTiling(msg) => write!(f, "invalid tiling: {msg}"),
            SimError::TraceTooLarge {
                cap_name,
                have,
                cap,
            } => write!(
                f,
                "trace too large: {have} exceeds the trace cap {cap_name} = {cap}; \
                 use a coarser tiling or drop the per-block expansion"
            ),
        }
    }
}

impl std::error::Error for SimError {}

impl From<MapError> for SimError {
    fn from(e: MapError) -> Self {
        SimError::Unmappable(e)
    }
}

/// Enumerates the output blocks of the Fig. 7 loop nest for a tiling, in
/// execution order.
///
/// The tiling must satisfy [`Tiling::validate_for`]: a zero dimension would
/// keep a tile start from ever advancing. [`simulate`] and the service
/// boundaries check this and return [`SimError::InvalidTiling`]; here it is
/// a debug assertion so the loop below cannot spin forever in debug builds.
#[must_use]
pub fn block_grid(layer: &ConvLayer, tiling: &Tiling) -> Vec<Block> {
    debug_assert!(
        tiling.validate_for(layer).is_ok(),
        "block_grid requires a validated tiling: {:?}",
        tiling.validate_for(layer)
    );
    let mut blocks = Vec::new();
    let mut i0 = 0;
    while i0 < layer.batch() {
        let b = tiling.b.min(layer.batch() - i0);
        let mut z0 = 0;
        while z0 < layer.out_channels() {
            let z = tiling.z.min(layer.out_channels() - z0);
            let mut y0 = 0;
            while y0 < layer.output_height() {
                let y = tiling.y.min(layer.output_height() - y0);
                let mut x0 = 0;
                while x0 < layer.output_width() {
                    let x = tiling.x.min(layer.output_width() - x0);
                    blocks.push(Block {
                        i0,
                        b,
                        z0,
                        z,
                        y0,
                        y,
                        x0,
                        x,
                    });
                    x0 += tiling.x;
                }
                y0 += tiling.y;
            }
            z0 += tiling.z;
        }
        i0 += tiling.b;
    }
    blocks
}

/// Clipped input extent (words) of a block along one axis: the rows/columns
/// actually fetched from DRAM (padding contributes nothing).
fn clipped_extent(
    o0: usize,
    len: usize,
    stride: usize,
    kernel: usize,
    pad: usize,
    in_dim: usize,
) -> u64 {
    let lo = (o0 * stride) as isize - pad as isize;
    let hi = ((o0 + len - 1) * stride + kernel - 1) as isize - pad as isize;
    let lo = lo.max(0);
    let hi = hi.min(in_dim as isize - 1);
    if hi >= lo {
        (hi - lo + 1) as u64
    } else {
        0
    }
}

/// One run of identically-shaped tiles along a single axis of the block
/// grid: `count` tiles share the clamped size `len` and (for spatial axes)
/// the image-clipped input extent `clip`; `o0` is the first such tile's
/// start offset, used to build a representative [`Block`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct AxisRun {
    o0: usize,
    len: usize,
    clip: u64,
    count: u64,
}

/// Collapses one spatial axis of the block grid into its distinct
/// `(len, clip)` shapes, in order of first occurrence (i.e. of each shape's
/// earliest tile, so iterating runs visits shapes in execution order).
fn axis_runs(
    out_dim: usize,
    tile: usize,
    stride: usize,
    kernel: usize,
    pad: usize,
    in_dim: usize,
) -> Vec<AxisRun> {
    let mut runs: Vec<AxisRun> = Vec::new();
    let mut o0 = 0;
    while o0 < out_dim {
        let len = tile.min(out_dim - o0);
        let clip = clipped_extent(o0, len, stride, kernel, pad, in_dim);
        match runs.iter_mut().find(|r| r.len == len && r.clip == clip) {
            Some(run) => run.count += 1,
            None => runs.push(AxisRun {
                o0,
                len,
                clip,
                count: 1,
            }),
        }
        o0 += tile;
    }
    runs
}

/// Runs of an index axis (batch, output channels): only the clamped length
/// matters, so there are at most two runs (interior, remainder). A unit
/// window with no padding makes `clip == len`, keeping the key harmless.
fn index_runs(dim: usize, tile: usize) -> Vec<AxisRun> {
    axis_runs(dim, tile, 1, 1, 0, dim)
}

/// The access counts and integer utilization inputs of one block.
///
/// Everything here depends only on the block's *shape class*
/// `(b, z, y, x, clip_x, clip_y)` — never on its absolute grid position —
/// which is what lets [`simulate`] evaluate one representative block per
/// class and multiply by the class multiplicity.
struct BlockCounts {
    dram_input_reads: u64,
    dram_weight_reads: u64,
    dram_output_writes: u64,
    gbuf_input_writes: u64,
    gbuf_input_reads: u64,
    gbuf_weight_writes: u64,
    gbuf_weight_reads: u64,
    greg_input_writes: u64,
    greg_weight_writes: u64,
    lreg_writes: u64,
    useful_macs: u64,
    issued_slots: u64,
    compute_cycles: u64,
    // Integer utilization inputs: the per-block f64 ratios of the original
    // implementation are now formed once from exact integer sums in
    // `Accumulator::finalize`, so aggregation order cannot change a bit.
    /// Psum words resident on chip (`b·z·y·x`).
    psum_words: u64,
    /// Live GBuf entries: `min(igbuf needed, IGBuf) + min(z, WGBuf)`.
    gbuf_used: u64,
    /// Live GReg bytes, clamped to the GReg capacity.
    greg_used_bytes: u64,
    /// PEs active in a pass (`rows_used · cols_used`): the PE-utilization
    /// denominator, since `useful·w/issued = useful/(rows·cols)` exactly.
    pe_denom: u64,
}

fn count_block(
    arch: &ArchConfig,
    layer: &ConvLayer,
    block: &Block,
    mapping: &Mapping,
) -> Result<BlockCounts, SimError> {
    let ci = layer.in_channels() as u64;
    let taps = (layer.kernel_height() * layer.kernel_width()) as u64;
    let pad = layer.padding();

    if block.z > arch.wgbuf_entries {
        return Err(SimError::WeightTileTooLarge {
            z: block.z,
            capacity: arch.wgbuf_entries,
        });
    }
    // Nominal (unclipped) halo of the whole block: what the IGBuf must hold
    // per input channel, and what gets written into it (boundary blocks
    // write a few redundant slots — Table IV's 1.15×).
    let (xh, yh) = layer.input_footprint(block.x, block.y);
    let igbuf_needed = block.b * xh * yh;
    if igbuf_needed > arch.igbuf_entries {
        return Err(SimError::InputTileTooLarge {
            needed: igbuf_needed,
            capacity: arch.igbuf_entries,
        });
    }

    let clip_x = clipped_extent(
        block.x0,
        block.x,
        layer.stride(),
        layer.kernel_width(),
        pad.horizontal,
        layer.in_width(),
    );
    let clip_y = clipped_extent(
        block.y0,
        block.y,
        layer.stride(),
        layer.kernel_height(),
        pad.vertical,
        layer.in_height(),
    );

    let dram_input_reads = block.b as u64 * clip_x * clip_y * ci;
    let dram_weight_reads = block.z as u64 * taps * ci;
    let dram_output_writes = block.psum_words();

    let rows_used = mapping.rows_used() as u64;
    let cols_used = block.z.div_ceil(mapping.zs).min(arch.pe_cols) as u64;
    let input_copies = (arch.pe_cols / arch.group_cols) as u64;
    let weight_copies = (arch.pe_rows / arch.group_rows) as u64;

    let gbuf_input_reads = rows_used * mapping.segment_stream_words as u64 * ci;
    let gbuf_weight_reads = block.z as u64 * taps * ci;

    let pass_cycles = mapping.pass_cycles();
    let compute_cycles = ci * taps * pass_cycles;
    let issued_slots = rows_used * cols_used * pass_cycles * taps * ci;
    let useful_macs = block.psum_words() * taps * ci;

    // Utilization inputs, kept in exact integers (clamps applied here, at
    // block granularity, exactly as the f64 snapshots used to).
    let gbuf_used = (igbuf_needed.min(arch.igbuf_entries) + block.z.min(arch.wgbuf_entries)) as u64;
    let greg_used_bytes = (rows_used * mapping.segment_words as u64 * input_copies
        + weight_copies * block.z as u64)
        * 2;

    Ok(BlockCounts {
        dram_input_reads,
        dram_weight_reads,
        dram_output_writes,
        gbuf_input_writes: block.b as u64 * xh as u64 * yh as u64 * ci,
        gbuf_input_reads,
        gbuf_weight_writes: dram_weight_reads,
        gbuf_weight_reads,
        greg_input_writes: gbuf_input_reads * input_copies,
        greg_weight_writes: weight_copies * block.z as u64 * taps * ci,
        lreg_writes: issued_slots,
        useful_macs,
        issued_slots,
        compute_cycles,
        psum_words: block.psum_words(),
        gbuf_used,
        greg_used_bytes: greg_used_bytes.min(arch.greg_bytes as u64),
        pe_denom: rows_used * cols_used,
    })
}

/// The unhidden DRAM stall of one block, decomposed into the intervals the
/// execution trace reports. [`StallParts::total`] recombines them with the
/// exact operation order the monolithic stall computation always used, so
/// traced and untraced simulations stay bit-identical.
struct StallParts {
    /// Per-iteration unhidden load stall (`transfer_kz - compute_kz`).
    load_per_iteration: u64,
    /// All-iteration load stall (`ci · load_per_iteration`, saturating).
    load: u64,
    /// One-off output write-back (drain) stall.
    drain: u64,
    /// One-off DRAM first-access latency.
    latency: u64,
}

impl StallParts {
    /// Total unhidden stall of the block.
    ///
    /// Saturating: `ArchConfig::validate` caps the bandwidth/frequency
    /// ratio, but a capped-yet-extreme custom configuration (slowest DRAM
    /// against the fastest core) on a huge layer could still push this sum
    /// past u64 — saturate rather than panic in debug builds. Saturating
    /// sums of nonnegative terms equal `min(true sum, u64::MAX)` regardless
    /// of association, so the class path and per-block walks stay
    /// bit-identical.
    fn total(&self) -> u64 {
        self.load
            .saturating_add(self.drain)
            .saturating_add(self.latency)
    }
}

/// Decomposed unhidden DRAM stall cycles of one block.
///
/// Timing: the GBufs double-buffer at iteration (kz) granularity
/// (Section V: "the GBufs are used for prefetching inputs and weights for
/// the subsequent pass"), so each iteration's transfer overlaps that
/// iteration's compute; the unhidden remainder stalls. The output
/// write-back and the first-access latency are charged once per block.
fn stall_parts(arch: &ArchConfig, layer: &ConvLayer, c: &BlockCounts) -> StallParts {
    let words_per_cycle = arch.dram_words_per_cycle();
    let ci = layer.in_channels() as u64;
    let words_per_kz = (c.dram_input_reads + c.dram_weight_reads) / ci;
    let transfer_kz = (words_per_kz as f64 / words_per_cycle).ceil() as u64;
    let compute_kz = c.compute_cycles / ci;
    let writeback = (c.dram_output_writes as f64 / words_per_cycle).ceil() as u64;
    let load_per_iteration = transfer_kz.saturating_sub(compute_kz);
    StallParts {
        load_per_iteration,
        load: ci.saturating_mul(load_per_iteration),
        drain: writeback.saturating_sub(compute_kz),
        latency: arch.dram.latency_cycles,
    }
}

/// Unhidden DRAM stall cycles of one block (see [`stall_parts`]).
fn block_stall(arch: &ArchConfig, layer: &ConvLayer, c: &BlockCounts) -> u64 {
    stall_parts(arch, layer, c).total()
}

/// Exact, order-independent aggregation of [`BlockCounts`].
///
/// Every field accumulates in integer arithmetic (`u64`/`u128`); the
/// floating-point utilization ratios are formed once in `finalize` from
/// the integer sums. Adding a class with multiplicity
/// `m` is therefore *exactly* the same as adding its `m` member blocks one
/// at a time, in any order — which is what makes the class-based fast path,
/// the parallel per-block fallback and [`simulate_reference`] bit-identical.
#[derive(Default)]
struct Accumulator {
    stats: SimStats,
    /// Σ `psum_words · compute_cycles` (LReg-utilization numerator).
    lreg_num: u128,
    /// Σ `gbuf_used · compute_cycles`.
    gbuf_num: u128,
    /// Σ `greg_used_bytes · compute_cycles`.
    greg_num: u128,
    /// Per-`rows·cols` Σ `useful_macs`: a block's compute-cycle-weighted PE
    /// utilization is `useful·w/issued = useful/(rows·cols)` exactly, so
    /// the weighted sum is a tiny map from denominator to integer
    /// numerator (at most one entry per distinct `z` tile size).
    pe_num: Vec<(u64, u128)>,
}

impl Accumulator {
    /// Adds `mult` blocks of the shape class described by `c`.
    fn add(&mut self, arch: &ArchConfig, layer: &ConvLayer, c: &BlockCounts, mult: u64) {
        let s = &mut self.stats;
        s.dram.input_reads += c.dram_input_reads * mult;
        s.dram.weight_reads += c.dram_weight_reads * mult;
        s.dram.output_writes += c.dram_output_writes * mult;
        s.gbuf.input_writes += c.gbuf_input_writes * mult;
        s.gbuf.input_reads += c.gbuf_input_reads * mult;
        s.gbuf.weight_writes += c.gbuf_weight_writes * mult;
        s.gbuf.weight_reads += c.gbuf_weight_reads * mult;
        s.reg.greg_input_writes += c.greg_input_writes * mult;
        s.reg.greg_weight_writes += c.greg_weight_writes * mult;
        s.reg.lreg_writes += c.lreg_writes * mult;
        s.useful_macs += c.useful_macs * mult;
        s.issued_slots += c.issued_slots * mult;
        s.compute_cycles += c.compute_cycles * mult;
        // Same saturating rationale as `block_stall`: identical for every
        // realistic configuration, panic-free for capped-but-extreme ones.
        s.stall_cycles = s
            .stall_cycles
            .saturating_add(block_stall(arch, layer, c).saturating_mul(mult));
        s.blocks += mult;
        s.iterations += layer.in_channels() as u64 * mult;

        let w = u128::from(c.compute_cycles) * u128::from(mult);
        self.lreg_num += u128::from(c.psum_words) * w;
        self.gbuf_num += u128::from(c.gbuf_used) * w;
        self.greg_num += u128::from(c.greg_used_bytes) * w;
        let macs = u128::from(c.useful_macs) * u128::from(mult);
        match self.pe_num.iter_mut().find(|(d, _)| *d == c.pe_denom) {
            Some((_, n)) => *n += macs,
            None => self.pe_num.push((c.pe_denom, macs)),
        }
    }

    /// Forms the utilization ratios from the integer sums and returns the
    /// finished stats. The division order is fixed (and `pe_num` is sorted
    /// by denominator), so any two accumulators holding the same integer
    /// state finalize to bit-identical floats.
    fn finalize(mut self, arch: &ArchConfig) -> SimStats {
        let util_w = self.stats.compute_cycles as f64;
        if util_w > 0.0 {
            let mut util = Utilization {
                lreg: self.lreg_num as f64 / arch.lreg_total_entries() as f64 / util_w,
                gbuf: self.gbuf_num as f64
                    / (arch.igbuf_entries + arch.wgbuf_entries) as f64
                    / util_w,
                greg: self.greg_num as f64 / arch.greg_bytes as f64 / util_w,
                ..Utilization::default()
            };
            self.pe_num.sort_unstable_by_key(|&(d, _)| d);
            let mut pe = 0.0f64;
            for &(d, macs) in &self.pe_num {
                pe += macs as f64 / d as f64;
            }
            util.pe = pe / util_w;
            let lreg_b = (arch.lreg_total_entries() * 2) as f64;
            let gbuf_b = arch.gbuf_bytes() as f64;
            let greg_b = arch.greg_bytes as f64;
            util.memory_overall = (util.lreg * lreg_b + util.gbuf * gbuf_b + util.greg * greg_b)
                / (lreg_b + gbuf_b + greg_b);
            self.stats.utilization = util;
        }
        self.stats
    }
}

/// Runs the counting simulation of one layer under one tiling.
///
/// Collapses the block grid into shape classes (see the module docs) and
/// evaluates one representative per class; when a pathological grid barely
/// collapses, falls back to a thread-fanned per-block walk. Both paths are
/// bit-identical to [`simulate_reference`].
///
/// # Errors
///
/// Returns [`SimError::InvalidArch`]/[`SimError::InvalidTiling`] on invalid
/// inputs, and the mapping/capacity errors of the first failing block (in
/// execution order) when a block exceeds the GBufs or cannot be mapped onto
/// the PE array; use `clb_core::plan_for_arch` to obtain a feasible tiling.
pub fn simulate(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
) -> Result<SimStats, SimError> {
    arch.validate().map_err(SimError::InvalidArch)?;
    tiling
        .validate_for(layer)
        .map_err(SimError::InvalidTiling)?;

    let [b_runs, z_runs, y_runs, x_runs] = grid_runs(layer, tiling);

    let classes = (b_runs.len() * z_runs.len() * y_runs.len() * x_runs.len()) as u128;
    let blocks = grid_block_count(layer, tiling);
    // When classification barely collapses the grid (possible only with
    // unusual padding/stride combinations that make many tiles of an axis
    // clip differently), per-class evaluation saves nothing — fan the
    // per-block walk out across threads instead. Identical results either
    // way; this is purely a scheduling choice.
    if classes * 4 >= blocks && blocks > 256 {
        return simulate_blocks_parallel(layer, tiling, arch);
    }

    // Classes are visited in lexicographic (b, z, y, x) run order with runs
    // in first-occurrence order, and every error condition depends only on
    // the clamped sizes, so the first error found here is the same error
    // (variant and payload) the per-block walk reports for its first
    // failing block.
    let mut acc = Accumulator::default();
    for rb in &b_runs {
        for rz in &z_runs {
            for ry in &y_runs {
                for rx in &x_runs {
                    let block = Block {
                        i0: rb.o0,
                        b: rb.len,
                        z0: rz.o0,
                        z: rz.len,
                        y0: ry.o0,
                        y: ry.len,
                        x0: rx.o0,
                        x: rx.len,
                    };
                    let mapping = map_block(arch, layer, &block)?;
                    let counts = count_block(arch, layer, &block, &mapping)?;
                    acc.add(
                        arch,
                        layer,
                        &counts,
                        rb.count * rz.count * ry.count * rx.count,
                    );
                }
            }
        }
    }
    Ok(acc.finalize(arch))
}

/// The per-axis shape runs of the block grid under a (validated) tiling,
/// in `(b, z, y, x)` order.
fn grid_runs(layer: &ConvLayer, tiling: &Tiling) -> [Vec<AxisRun>; 4] {
    [
        index_runs(layer.batch(), tiling.b),
        index_runs(layer.out_channels(), tiling.z),
        axis_runs(
            layer.output_height(),
            tiling.y,
            layer.stride(),
            layer.kernel_height(),
            layer.padding().vertical,
            layer.in_height(),
        ),
        axis_runs(
            layer.output_width(),
            tiling.x,
            layer.stride(),
            layer.kernel_width(),
            layer.padding().horizontal,
            layer.in_width(),
        ),
    ]
}

/// Total blocks of the grid, computed without enumerating it.
fn grid_block_count(layer: &ConvLayer, tiling: &Tiling) -> u128 {
    (layer.batch().div_ceil(tiling.b) as u128)
        * (layer.out_channels().div_ceil(tiling.z) as u128)
        * (layer.output_height().div_ceil(tiling.y) as u128)
        * (layer.output_width().div_ceil(tiling.x) as u128)
}

/// Runs the counting simulation of one layer under one tiling while
/// recording an [`ExecutionTrace`] of where the cycles go (see
/// [`crate::trace`]).
///
/// Always takes the class path (the parallel fallback of [`simulate`] is a
/// pure scheduling choice, so the returned [`SimStats`] are bit-identical
/// to an untraced run either way), feeding the trace builder in the same
/// loop iterations that feed the stats accumulator — which is how the
/// trace's interval sums are guaranteed to reproduce `compute_cycles`,
/// `stall_cycles`, `blocks` and `iterations` bit-identically. With
/// [`TraceOptions::expand`] the class table is additionally expanded into
/// the full per-block list in execution order (required for
/// [`ExecutionTrace::to_vcd`]).
///
/// # Errors
///
/// Same conditions as [`simulate`], plus [`SimError::TraceTooLarge`] when
/// the grid implies more than [`trace::caps::MAX_TRACE_CLASSES`] shape
/// classes, or more than [`trace::caps::MAX_TRACE_BLOCKS`] blocks with
/// `expand` set — checked from the axis-run cardinalities before anything
/// trace-sized is allocated.
///
/// [`trace::caps::MAX_TRACE_CLASSES`]: crate::trace::caps::MAX_TRACE_CLASSES
/// [`trace::caps::MAX_TRACE_BLOCKS`]: crate::trace::caps::MAX_TRACE_BLOCKS
pub fn simulate_traced(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
    options: &TraceOptions,
) -> Result<(SimStats, ExecutionTrace), SimError> {
    arch.validate().map_err(SimError::InvalidArch)?;
    tiling
        .validate_for(layer)
        .map_err(SimError::InvalidTiling)?;

    let [b_runs, z_runs, y_runs, x_runs] = grid_runs(layer, tiling);
    let classes =
        b_runs.len() as u128 * z_runs.len() as u128 * y_runs.len() as u128 * x_runs.len() as u128;
    if classes > trace_caps::MAX_TRACE_CLASSES {
        return Err(SimError::TraceTooLarge {
            cap_name: "MAX_TRACE_CLASSES",
            have: classes,
            cap: trace_caps::MAX_TRACE_CLASSES,
        });
    }
    let blocks = grid_block_count(layer, tiling);
    if options.expand && blocks > trace_caps::MAX_TRACE_BLOCKS {
        return Err(SimError::TraceTooLarge {
            cap_name: "MAX_TRACE_BLOCKS",
            have: blocks,
            cap: trace_caps::MAX_TRACE_BLOCKS,
        });
    }

    let ci = layer.in_channels() as u64;
    let mut acc = Accumulator::default();
    let mut builder = TraceBuilder::default();
    for rb in &b_runs {
        for rz in &z_runs {
            for ry in &y_runs {
                for rx in &x_runs {
                    let block = Block {
                        i0: rb.o0,
                        b: rb.len,
                        z0: rz.o0,
                        z: rz.len,
                        y0: ry.o0,
                        y: ry.len,
                        x0: rx.o0,
                        x: rx.len,
                    };
                    let mapping = map_block(arch, layer, &block)?;
                    let counts = count_block(arch, layer, &block, &mapping)?;
                    let mult = rb.count * rz.count * ry.count * rx.count;
                    let parts = stall_parts(arch, layer, &counts);
                    builder.add(&ClassObservation {
                        b: rb.len,
                        z: rz.len,
                        y: ry.len,
                        x: rx.len,
                        clip_x: rx.clip,
                        clip_y: ry.clip,
                        multiplicity: mult,
                        iterations: ci,
                        active_pes: counts.pe_denom,
                        compute_cycles: counts.compute_cycles,
                        // Exact: compute cycles are `ci · taps · pass_cycles`.
                        compute_per_iteration: counts.compute_cycles / ci,
                        load_per_iteration: parts.load_per_iteration,
                        drain: parts.drain,
                        latency: parts.latency,
                        block_stall: parts.total(),
                    });
                    acc.add(arch, layer, &counts, mult);
                }
            }
        }
    }
    let stats = acc.finalize(arch);
    let mut trace = builder.finish(&stats);
    if options.expand {
        let blocks = expand_blocks(layer, tiling, &trace);
        TraceBuilder::attach_blocks(&mut trace, blocks);
    }
    Ok((stats, trace))
}

/// Expands the class table into the full per-block list, in execution
/// order. Every block's shape key `(b, z, y, x, clip_x, clip_y)` is derived
/// exactly as the class loop derived it, so the lookup cannot miss.
fn expand_blocks(layer: &ConvLayer, tiling: &Tiling, trace: &ExecutionTrace) -> Vec<TraceBlock> {
    let pad = layer.padding();
    block_grid(layer, tiling)
        .iter()
        .map(|blk| {
            let clip_x = clipped_extent(
                blk.x0,
                blk.x,
                layer.stride(),
                layer.kernel_width(),
                pad.horizontal,
                layer.in_width(),
            );
            let clip_y = clipped_extent(
                blk.y0,
                blk.y,
                layer.stride(),
                layer.kernel_height(),
                pad.vertical,
                layer.in_height(),
            );
            let class = trace
                .classes
                .iter()
                .position(|c| {
                    c.b == blk.b
                        && c.z == blk.z
                        && c.y == blk.y
                        && c.x == blk.x
                        && c.clip_x == clip_x
                        && c.clip_y == clip_y
                })
                .expect("every block of the grid belongs to a recorded shape class");
            TraceBlock {
                i0: blk.i0,
                b: blk.b,
                z0: blk.z0,
                z: blk.z,
                y0: blk.y0,
                y: blk.y,
                x0: blk.x0,
                x: blk.x,
                class,
            }
        })
        .collect()
}

/// The fan-out fallback: a `rayon`-parallel per-block walk feeding the same
/// integer accumulator as the class path (in block order, though for the
/// accumulator order is irrelevant).
fn simulate_blocks_parallel(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
) -> Result<SimStats, SimError> {
    let blocks = block_grid(layer, tiling);
    let per_block = rayon::par_map(&blocks, |block| -> Result<BlockCounts, SimError> {
        let mapping = map_block(arch, layer, block)?;
        count_block(arch, layer, block, &mapping)
    });
    let mut acc = Accumulator::default();
    for counts in per_block {
        acc.add(arch, layer, &counts?, 1);
    }
    Ok(acc.finalize(arch))
}

/// The retained per-block reference: walks every block of the grid serially
/// in execution order and evaluates each one individually, as the original
/// implementation did.
///
/// This is the oracle the class-based [`simulate`] is pinned against — the
/// property tests assert bit-identical [`SimStats`] (every field, stalls
/// and utilizations included) and the `sim_hotpath` bench proves parity
/// before timing the speedup. Counter models are only trustworthy when
/// checked against a known-ground-truth walk; keep this function honest
/// (no classification, no multiplicities) when changing the simulator.
///
/// One caveat: the final utilization-ratio arithmetic is shared with the
/// fast path through the internal accumulator (bit identity across
/// aggregation orders is impossible otherwise), so *that* stage is not
/// independently witnessed here. The `class_parity` integration tests close
/// the loop with a seed-style per-block f64 re-derivation of the
/// utilizations, pinned against this refactored math to a tight tolerance.
///
/// # Errors
///
/// Same conditions as [`simulate`].
pub fn simulate_reference(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
) -> Result<SimStats, SimError> {
    arch.validate().map_err(SimError::InvalidArch)?;
    tiling
        .validate_for(layer)
        .map_err(SimError::InvalidTiling)?;
    let mut acc = Accumulator::default();
    for block in block_grid(layer, tiling) {
        let mapping = map_block(arch, layer, &block)?;
        let counts = count_block(arch, layer, &block, &mapping)?;
        acc.add(arch, layer, &counts, 1);
    }
    Ok(acc.finalize(arch))
}

/// Runs the *functional* simulation: identical blocking and mapping, but the
/// MACs are actually performed in Q8.8 with 32-bit accumulation, producing
/// the layer output.
///
/// Returns the output tensor together with the same [`SimStats`] that
/// [`simulate`] reports.
///
/// # Errors
///
/// Same conditions as [`simulate`].
///
/// # Panics
///
/// Panics if the tensor shapes disagree with `layer`.
pub fn simulate_functional(
    layer: &ConvLayer,
    tiling: &Tiling,
    arch: &ArchConfig,
    input: &Tensor4<Q8_8>,
    weights: &Tensor4<Q8_8>,
) -> Result<(Tensor4<Q8_8>, SimStats), SimError> {
    assert_eq!(
        input.shape(),
        (
            layer.batch(),
            layer.in_channels(),
            layer.in_height(),
            layer.in_width()
        ),
        "input tensor shape does not match layer"
    );
    assert_eq!(
        weights.shape(),
        (
            layer.out_channels(),
            layer.in_channels(),
            layer.kernel_height(),
            layer.kernel_width()
        ),
        "weight tensor shape does not match layer"
    );

    let stats = simulate(layer, tiling, arch)?;
    let mut out = Tensor4::zeros(
        layer.batch(),
        layer.out_channels(),
        layer.output_height(),
        layer.output_width(),
    );
    let pad = layer.padding();
    let stride = layer.stride();

    for block in block_grid(layer, tiling) {
        // The block's Psums live in LRegs (Acc32 per slot) for the whole
        // iteration sequence over kz and kernel taps — exactly the OutR
        // schedule of Fig. 7.
        let mut acc = vec![Acc32::ZERO; block.b * block.z * block.y * block.x];
        for kz in 0..layer.in_channels() {
            for ky in 0..layer.kernel_height() {
                for kx in 0..layer.kernel_width() {
                    // One pass: every Psum of the block updated once.
                    let mut slot = 0usize;
                    for ib in 0..block.b {
                        for iz in 0..block.z {
                            for iy in 0..block.y {
                                for ix in 0..block.x {
                                    let oy = block.y0 + iy;
                                    let ox = block.x0 + ix;
                                    let i = block.i0 + ib;
                                    let oz = block.z0 + iz;
                                    let yy = (oy * stride + ky) as isize - pad.vertical as isize;
                                    let xx = (ox * stride + kx) as isize - pad.horizontal as isize;
                                    if yy >= 0
                                        && xx >= 0
                                        && (yy as usize) < layer.in_height()
                                        && (xx as usize) < layer.in_width()
                                    {
                                        let a = input[(i, kz, yy as usize, xx as usize)];
                                        let w = weights[(oz, kz, ky, kx)];
                                        acc[slot] = acc[slot].mac(a, w);
                                    }
                                    slot += 1;
                                }
                            }
                        }
                    }
                }
            }
        }
        // Write the finished block back to DRAM (saturating to 16 bits).
        let mut slot = 0usize;
        for ib in 0..block.b {
            for iz in 0..block.z {
                for iy in 0..block.y {
                    for ix in 0..block.x {
                        out[(block.i0 + ib, block.z0 + iz, block.y0 + iy, block.x0 + ix)] =
                            acc[slot].to_q8_8();
                        slot += 1;
                    }
                }
            }
        }
    }
    Ok((out, stats))
}

/// The effective on-chip memory of an architecture as an [`OnChipMemory`],
/// for plugging simulator configs into the analytic bounds.
#[must_use]
pub fn effective_memory(arch: &ArchConfig) -> OnChipMemory {
    OnChipMemory::from_words(arch.effective_onchip_words() as f64)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small_layer() -> ConvLayer {
        ConvLayer::square(1, 8, 12, 4, 3, 1).unwrap()
    }

    fn small_tiling(layer: &ConvLayer) -> Tiling {
        Tiling::clamped(layer, 1, 8, 6, 6)
    }

    #[test]
    fn block_grid_covers_outputs_exactly() {
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let blocks = block_grid(&layer, &tiling);
        let total: u64 = blocks.iter().map(Block::psum_words).sum();
        assert_eq!(total, layer.output_words());
    }

    #[test]
    fn block_grid_handles_non_dividing_tiles() {
        let layer = small_layer();
        let tiling = Tiling::clamped(&layer, 1, 5, 5, 5);
        let blocks = block_grid(&layer, &tiling);
        let total: u64 = blocks.iter().map(Block::psum_words).sum();
        assert_eq!(total, layer.output_words());
        // 8 channels in tiles of 5 -> 2 tiles; 12 in tiles of 5 -> 3.
        assert_eq!(blocks.len(), 2 * 3 * 3);
    }

    #[test]
    fn simulation_counts_match_dataflow_model() {
        // The simulator's DRAM counters must equal the analytic Eq. 14
        // traffic for the same tiling.
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let arch = ArchConfig::example();
        let stats = simulate(&layer, &tiling, &arch).unwrap();
        let analytic = dataflow::our_dataflow_traffic(&layer, &tiling);
        assert_eq!(stats.dram.input_reads, analytic.input_reads);
        assert_eq!(stats.dram.weight_reads, analytic.weight_reads);
        assert_eq!(stats.dram.output_writes, analytic.output_writes);
    }

    #[test]
    fn weights_read_once_from_gbuf() {
        // Table IV: GBuf weight reads == DRAM weight reads (ratio 1.00).
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        assert_eq!(stats.gbuf.weight_reads, stats.dram.weight_reads);
        assert_eq!(stats.gbuf.weight_writes, stats.dram.weight_reads);
    }

    #[test]
    fn gbuf_input_reads_include_halos() {
        // Table IV: input GBuf reads exceed DRAM input reads (halo factor).
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        assert!(stats.gbuf.input_reads >= stats.dram.input_reads);
        // A 6x6 block split across 16 PE rows has a large per-row halo; the
        // network-scale halo factor (~1.7x, Table IV) is checked in the
        // workspace integration tests on realistic layers.
        assert!(stats.gbuf.input_reads < 8 * stats.dram.input_reads);
    }

    #[test]
    fn lreg_writes_at_least_macs() {
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        assert!(stats.reg.lreg_writes >= layer.macs());
        assert_eq!(stats.useful_macs, layer.macs());
    }

    #[test]
    fn functional_matches_acc32_reference() {
        let layer = small_layer();
        let input = Tensor4::from_fn(1, 4, 12, 12, |_, c, h, w| {
            Q8_8::from_f64(((c + h * w) % 7) as f64 * 0.25 - 0.75)
        });
        let weights = Tensor4::from_fn(8, 4, 3, 3, |n, c, h, w| {
            Q8_8::from_f64(((n + c + h + w) % 5) as f64 * 0.125 - 0.25)
        });
        let (out, _) = simulate_functional(
            &layer,
            &small_tiling(&layer),
            &ArchConfig::example(),
            &input,
            &weights,
        )
        .unwrap();

        // Reference: direct Acc32 accumulation in the canonical loop order.
        let pad = layer.padding();
        for i in 0..1 {
            for oz in 0..8 {
                for oy in 0..12 {
                    for ox in 0..12 {
                        let mut acc = Acc32::ZERO;
                        for kz in 0..4 {
                            for ky in 0..3 {
                                for kx in 0..3 {
                                    let yy = (oy + ky) as isize - pad.vertical as isize;
                                    let xx = (ox + kx) as isize - pad.horizontal as isize;
                                    if yy >= 0
                                        && xx >= 0
                                        && (yy as usize) < 12
                                        && (xx as usize) < 12
                                    {
                                        acc = acc.mac(
                                            input[(i, kz, yy as usize, xx as usize)],
                                            weights[(oz, kz, ky, kx)],
                                        );
                                    }
                                }
                            }
                        }
                        assert_eq!(out[(i, oz, oy, ox)], acc.to_q8_8(), "at {oz},{oy},{ox}");
                    }
                }
            }
        }
    }

    #[test]
    fn oversized_weight_tile_rejected() {
        let layer = ConvLayer::square(1, 512, 8, 8, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 512, 2, 2);
        let err = simulate(&layer, &tiling, &ArchConfig::example()).unwrap_err();
        assert!(matches!(err, SimError::WeightTileTooLarge { .. }));
    }

    #[test]
    fn oversized_input_tile_rejected() {
        let layer = ConvLayer::square(1, 8, 64, 8, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 1, 64, 64);
        let err = simulate(&layer, &tiling, &ArchConfig::example()).unwrap_err();
        assert!(matches!(
            err,
            SimError::InputTileTooLarge { .. } | SimError::Unmappable(_)
        ));
    }

    #[test]
    fn stall_cycles_grow_with_slower_dram() {
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let fast = ArchConfig::example();
        let mut slow = fast;
        slow.dram.bandwidth_bytes_per_s = 1e8; // 64x slower
        let s_fast = simulate(&layer, &tiling, &fast).unwrap();
        let s_slow = simulate(&layer, &tiling, &slow).unwrap();
        assert!(s_slow.stall_cycles > s_fast.stall_cycles);
        assert_eq!(s_slow.compute_cycles, s_fast.compute_cycles);
    }

    #[test]
    fn axis_runs_cover_the_axis() {
        // 56 outputs in tiles of 9, kernel 3, stride 1, pad 1, input 56:
        // left-clipped edge, interior run, and a clipped remainder.
        let runs = axis_runs(56, 9, 1, 3, 1, 56);
        let total: u64 = runs.iter().map(|r| r.count * r.len as u64).sum();
        assert_eq!(total, 56);
        assert_eq!(
            runs[0],
            AxisRun {
                o0: 0,
                len: 9,
                clip: 10,
                count: 1
            }
        );
        assert_eq!(
            runs[1],
            AxisRun {
                o0: 9,
                len: 9,
                clip: 11,
                count: 5
            }
        );
        assert_eq!(
            runs[2],
            AxisRun {
                o0: 54,
                len: 2,
                clip: 3,
                count: 1
            }
        );
    }

    #[test]
    fn index_runs_have_at_most_two_shapes() {
        let runs = index_runs(64, 5);
        assert_eq!(runs.len(), 2);
        assert_eq!((runs[0].len, runs[0].count), (5, 12));
        assert_eq!((runs[1].len, runs[1].count), (4, 1));
        assert_eq!(index_runs(64, 8).len(), 1);
    }

    #[test]
    fn class_path_matches_reference_bitwise() {
        let layer = small_layer();
        for tiling in [
            small_tiling(&layer),
            Tiling::clamped(&layer, 1, 5, 5, 5),
            Tiling::clamped(&layer, 1, 8, 12, 12),
            Tiling::clamped(&layer, 1, 1, 1, 1),
        ] {
            let arch = ArchConfig::example();
            let fast = simulate(&layer, &tiling, &arch).unwrap();
            let slow = simulate_reference(&layer, &tiling, &arch).unwrap();
            assert_eq!(fast, slow, "tiling {tiling}");
            let (uf, us) = (fast.utilization, slow.utilization);
            for (a, b) in [
                (uf.gbuf, us.gbuf),
                (uf.greg, us.greg),
                (uf.lreg, us.lreg),
                (uf.memory_overall, us.memory_overall),
                (uf.pe, us.pe),
            ] {
                assert_eq!(a.to_bits(), b.to_bits(), "tiling {tiling}");
            }
        }
    }

    #[test]
    fn invalid_arch_names_the_real_cause() {
        let layer = small_layer();
        let tiling = small_tiling(&layer);
        let mut arch = ArchConfig::example();
        arch.group_rows = 5;
        let err = simulate(&layer, &tiling, &arch).unwrap_err();
        let SimError::InvalidArch(msg) = &err else {
            panic!("expected InvalidArch, got {err:?}");
        };
        assert!(msg.contains("group rows 5"), "{msg}");
        assert_eq!(simulate_reference(&layer, &tiling, &arch).unwrap_err(), err);
    }

    #[test]
    fn zero_dimension_tiling_rejected_promptly() {
        let layer = small_layer();
        let arch = ArchConfig::example();
        for tiling in [
            Tiling {
                b: 0,
                z: 8,
                y: 6,
                x: 6,
            },
            Tiling {
                b: 1,
                z: 0,
                y: 6,
                x: 6,
            },
            Tiling {
                b: 1,
                z: 8,
                y: 0,
                x: 6,
            },
            Tiling {
                b: 1,
                z: 8,
                y: 6,
                x: 0,
            },
        ] {
            let err = simulate(&layer, &tiling, &arch).unwrap_err();
            assert!(
                matches!(&err, SimError::InvalidTiling(m) if m.contains("nonzero")),
                "{tiling}: {err}"
            );
        }
        let oversized = Tiling {
            b: 1,
            z: 9,
            y: 6,
            x: 6,
        };
        let err = simulate(&layer, &oversized, &arch).unwrap_err();
        assert!(matches!(&err, SimError::InvalidTiling(m) if m.contains("exceeds")));
    }

    #[test]
    fn parallel_fallback_matches_reference_bitwise() {
        // A unit tiling makes every block its own class along y/x only when
        // padding clips them all differently; force the fallback by calling
        // it directly and compare against both the class path and the
        // reference.
        let layer = small_layer();
        let tiling = Tiling::clamped(&layer, 1, 3, 2, 2);
        let arch = ArchConfig::example();
        let par = simulate_blocks_parallel(&layer, &tiling, &arch).unwrap();
        assert_eq!(par, simulate(&layer, &tiling, &arch).unwrap());
        assert_eq!(par, simulate_reference(&layer, &tiling, &arch).unwrap());
    }

    #[test]
    fn class_and_reference_agree_on_errors() {
        // z = 512 > WGBuf: both paths must report the same first error.
        let layer = ConvLayer::square(1, 512, 8, 8, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 512, 2, 2);
        let arch = ArchConfig::example();
        assert_eq!(
            simulate(&layer, &tiling, &arch).unwrap_err(),
            simulate_reference(&layer, &tiling, &arch).unwrap_err()
        );
        // Unmappable: a huge spatial block on implementation 1.
        let layer = ConvLayer::square(3, 256, 56, 128, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 3, 256, 56, 56);
        assert_eq!(
            simulate(&layer, &tiling, &arch).unwrap_err(),
            simulate_reference(&layer, &tiling, &arch).unwrap_err()
        );
    }

    #[test]
    fn utilizations_in_unit_interval() {
        let layer = small_layer();
        let stats = simulate(&layer, &small_tiling(&layer), &ArchConfig::example()).unwrap();
        let u = stats.utilization;
        for v in [u.gbuf, u.greg, u.lreg, u.memory_overall, u.pe] {
            assert!((0.0..=1.0).contains(&v), "utilization out of range: {v}");
        }
        assert!(u.pe > 0.5, "PE utilization should be high, got {}", u.pe);
    }
}
