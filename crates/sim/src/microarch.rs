//! Signal-level microarchitecture simulation of one iteration (Fig. 11).
//!
//! The counting engine ([`simulate`](crate::simulate)) and the functional
//! walk operate at block granularity. This module drops one level lower and
//! executes a single iteration the way the *hardware* does, cycle by cycle:
//!
//! * the WGBuf feeds the weight GReg rows once per pass (`z'` words, one
//!   kernel tap of every resident kernel);
//! * the IGBuf feeds each PE row's input GReg segment (the sub-tile window,
//!   or one kernel row's worth under the streaming fallback);
//! * every cycle, each PE row's input MUX selects one window element, each
//!   PE column's weight MUX selects one of the `z'` weights with the
//!   stride-`q` channel interleave, and every PE performs one MAC into the
//!   LReg addressed by the controller;
//! * all PEs run in lockstep: the same MUX selections and the same LReg
//!   address everywhere (Section V's "all PEs operate synchronously").
//!
//! The tests drive whole layers through this path and require **bit-exact**
//! agreement with [`simulate_functional`](crate::simulate_functional) and
//! **count-exact** agreement with the block engine's GReg/LReg counters —
//! i.e. the reported communication volumes describe a schedule the Fig. 11
//! structure can really execute.

use conv_model::fixed::{Acc32, Q8_8};
use conv_model::{ConvLayer, Tensor4};

use crate::config::ArchConfig;
use crate::mapping::{map_block, Block, Mapping};
use crate::SimError;

/// Access counters collected by the signal-level model for one iteration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct IterationTrace {
    /// Words written into weight GReg rows (all physical copies).
    pub greg_weight_writes: u64,
    /// Words written into input GReg segments (all physical copies).
    pub greg_input_writes: u64,
    /// Input-MUX selections that fed at least one PE.
    pub input_mux_selects: u64,
    /// Weight-MUX selections that fed at least one PE.
    pub weight_mux_selects: u64,
    /// LReg writes (one per PE per cycle, lockstep).
    pub lreg_writes: u64,
    /// Cycles the iteration took.
    pub cycles: u64,
}

/// The per-PE-row state: one input GReg segment holding the sub-tile window
/// for the current input channel (padded positions hold zero, exactly like
/// the real segment, which is loaded with materialised zeros).
struct Segment {
    height: usize,
    width: usize,
    data: Vec<Q8_8>,
}

impl Segment {
    fn load(
        layer: &ConvLayer,
        input: &Tensor4<Q8_8>,
        image: usize,
        oy0: usize,
        ox0: usize,
        ys: usize,
        xs: usize,
    ) -> Segment {
        let (width, height) = layer.input_footprint(xs, ys);
        let oy = (oy0 * layer.stride()) as isize - layer.padding().vertical as isize;
        let ox = (ox0 * layer.stride()) as isize - layer.padding().horizontal as isize;
        let mut data = Vec::with_capacity(width * height);
        for dy in 0..height {
            for dx in 0..width {
                let iy = oy + dy as isize;
                let ix = ox + dx as isize;
                let v = if iy >= 0
                    && ix >= 0
                    && (iy as usize) < layer.in_height()
                    && (ix as usize) < layer.in_width()
                {
                    input[(image, 0, iy as usize, ix as usize)]
                } else {
                    Q8_8::ZERO
                };
                data.push(v);
            }
        }
        Segment {
            height,
            width,
            data,
        }
    }

    /// The input MUX: selects window element for output position
    /// `(sy, sx)` at kernel tap `(ky, kx)`.
    fn select(&self, layer: &ConvLayer, sy: usize, sx: usize, ky: usize, kx: usize) -> Q8_8 {
        let dy = sy * layer.stride() + ky;
        let dx = sx * layer.stride() + kx;
        debug_assert!(dy < self.height && dx < self.width);
        self.data[dy * self.width + dx]
    }
}

/// Executes one iteration (one `kz`, all `Wk·Hk` passes) of a block at
/// signal level, accumulating into `psums` (row-major over the block's
/// `b·z·y·x` Psum slots, matching the block engine's layout).
///
/// `channel_input` must be the single input channel `kz` of the layer
/// (shape `B×1×Hi×Wi`); `tap_weights[ky][kx]` must hold the `z'` resident
/// weights of tap `(ky, kx)` in block-channel order.
///
/// # Errors
///
/// Returns [`SimError`] if the block cannot be mapped.
///
/// # Panics
///
/// Panics on tensor-shape mismatches.
#[allow(clippy::too_many_arguments)]
pub fn run_iteration(
    arch: &ArchConfig,
    layer: &ConvLayer,
    block: &Block,
    channel_input: &Tensor4<Q8_8>,
    tap_weights: &[Vec<Q8_8>],
    psums: &mut [Acc32],
) -> Result<IterationTrace, SimError> {
    let mapping: Mapping = map_block(arch, layer, block)?;
    assert_eq!(
        tap_weights.len(),
        layer.kernel_height() * layer.kernel_width(),
        "one weight vector per kernel tap"
    );
    assert_eq!(psums.len(), block.psum_words() as usize);

    let mut trace = IterationTrace::default();
    let weight_copies = (arch.pe_rows / arch.group_rows) as u64;
    let input_copies = (arch.pe_cols / arch.group_cols) as u64;

    // Row assignments: enumerate the (image, y-subtile, x-subtile) grid.
    // Rows beyond the grid hold out-of-range (idle-padding) work.
    struct RowWork {
        image_base: usize,
        oy0: usize,
        ox0: usize,
    }
    let mut rows: Vec<RowWork> = Vec::with_capacity(arch.pe_rows);
    for rb in 0..mapping.pb {
        for ry in 0..mapping.py {
            for rx in 0..mapping.px {
                rows.push(RowWork {
                    image_base: rb * mapping.images_per_row,
                    oy0: block.y0 + ry * mapping.ys,
                    ox0: block.x0 + rx * mapping.xs,
                });
            }
        }
    }

    let full_window = mapping.segment_words == mapping.segment_stream_words;
    let zs = mapping.zs;
    let cols_used = block.z.div_ceil(zs).min(arch.pe_cols);

    // Per-row segments (loaded once per iteration when the window fits;
    // reloaded per kernel row otherwise). For counting we charge the loads
    // where they happen.
    let mut segments: Vec<Vec<Segment>> = Vec::new();
    let load_segments = |rows: &[RowWork], _ky: usize| -> Vec<Vec<Segment>> {
        let mut all = Vec::with_capacity(rows.len());
        for row in rows {
            let mut per_image = Vec::with_capacity(mapping.images_per_row);
            for i in 0..mapping.images_per_row {
                // Idle rows (beyond the block's images) load a valid but
                // unused window; clamp every coordinate into range.
                let local_image = (row.image_base + i).min(block.b - 1);
                per_image.push(Segment::load(
                    layer,
                    channel_input,
                    local_image,
                    row.oy0.min(layer.output_height() - 1),
                    row.ox0.min(layer.output_width() - 1),
                    mapping.ys,
                    mapping.xs,
                ));
            }
            all.push(per_image);
        }
        all
    };

    if full_window {
        segments = load_segments(&rows, 0);
        trace.greg_input_writes += rows.len() as u64 * mapping.segment_words as u64 * input_copies;
    }

    for ky in 0..layer.kernel_height() {
        if !full_window {
            // Streaming fallback: reload the rows needed by this kernel row.
            segments = load_segments(&rows, ky);
            trace.greg_input_writes +=
                rows.len() as u64 * mapping.segment_words as u64 * input_copies;
        }
        for kx in 0..layer.kernel_width() {
            let tap = &tap_weights[ky * layer.kernel_width() + kx];
            assert_eq!(tap.len(), block.z, "tap weights cover the block's channels");
            // Load the weight GReg rows for this pass.
            trace.greg_weight_writes += block.z as u64 * weight_copies;

            // One pass: positions × zs lockstep cycles.
            for pos in 0..mapping.positions {
                let img = pos / (mapping.ys * mapping.xs);
                let rem = pos % (mapping.ys * mapping.xs);
                let sy = rem / mapping.xs;
                let sx = rem % mapping.xs;
                for ch in 0..zs {
                    trace.cycles += 1;
                    trace.input_mux_selects += rows.len() as u64;
                    trace.weight_mux_selects += cols_used as u64;
                    trace.lreg_writes += (rows.len() * cols_used) as u64;

                    for (r, row) in rows.iter().enumerate() {
                        let oy = row.oy0 + sy;
                        let ox = row.ox0 + sx;
                        let image_idx = row.image_base + img;
                        // Out-of-range slots are idle-padding work: the PE
                        // still cycles (counted above) but owns no Psum.
                        if oy >= block.y0 + block.y
                            || ox >= block.x0 + block.x
                            || image_idx >= block.b
                        {
                            continue;
                        }
                        let a = segments[r][img].select(layer, sy, sx, ky, kx);
                        for col in 0..cols_used {
                            // Stride-q channel interleave (Fig. 11).
                            let iz = ch * cols_used + col;
                            if iz >= block.z {
                                continue;
                            }
                            let w = tap[iz];
                            let slot = (((image_idx * block.z) + iz) * block.y + (oy - block.y0))
                                * block.x
                                + (ox - block.x0);
                            psums[slot] = psums[slot].mac(a, w);
                        }
                    }
                }
            }
        }
    }
    Ok(trace)
}

/// Runs a whole layer through the signal-level path: every block, every
/// input channel, every pass — returning the output tensor and the summed
/// iteration traces.
///
/// This is slow (it really cycles the array); intended for validation on
/// small layers.
///
/// # Errors
///
/// Returns [`SimError`] if any block cannot be mapped.
///
/// # Panics
///
/// Panics on tensor-shape mismatches.
pub fn run_layer_microarch(
    arch: &ArchConfig,
    layer: &ConvLayer,
    tiling: &dataflow::Tiling,
    input: &Tensor4<Q8_8>,
    weights: &Tensor4<Q8_8>,
) -> Result<(Tensor4<Q8_8>, IterationTrace), SimError> {
    let mut out = Tensor4::zeros(
        layer.batch(),
        layer.out_channels(),
        layer.output_height(),
        layer.output_width(),
    );
    let mut total = IterationTrace::default();

    for block in crate::block_grid(layer, tiling) {
        let mut psums = vec![Acc32::ZERO; block.psum_words() as usize];
        for kz in 0..layer.in_channels() {
            // The IGBuf slice: channel kz of the block's images.
            let channel_input = Tensor4::from_fn(
                block.b,
                1,
                layer.in_height(),
                layer.in_width(),
                |i, _, h, w| input[(block.i0 + i, kz, h, w)],
            );
            // The WGBuf rows: per tap, the block's z' weights.
            let mut tap_weights = Vec::with_capacity(layer.kernel_height() * layer.kernel_width());
            for ky in 0..layer.kernel_height() {
                for kx in 0..layer.kernel_width() {
                    tap_weights.push(
                        (0..block.z)
                            .map(|j| weights[(block.z0 + j, kz, ky, kx)])
                            .collect::<Vec<Q8_8>>(),
                    );
                }
            }
            let trace = run_iteration(
                arch,
                layer,
                &block,
                &channel_input,
                &tap_weights,
                &mut psums,
            )?;
            total.greg_weight_writes += trace.greg_weight_writes;
            total.greg_input_writes += trace.greg_input_writes;
            total.input_mux_selects += trace.input_mux_selects;
            total.weight_mux_selects += trace.weight_mux_selects;
            total.lreg_writes += trace.lreg_writes;
            total.cycles += trace.cycles;
        }
        // Write-back.
        let mut slot = 0usize;
        for i in 0..block.b {
            for z in 0..block.z {
                for y in 0..block.y {
                    for x in 0..block.x {
                        out[(block.i0 + i, block.z0 + z, block.y0 + y, block.x0 + x)] =
                            psums[slot].to_q8_8();
                        slot += 1;
                    }
                }
            }
        }
    }
    Ok((out, total))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{simulate, simulate_functional};
    use dataflow::Tiling;

    fn fixture() -> (ConvLayer, Tiling, ArchConfig, Tensor4<Q8_8>, Tensor4<Q8_8>) {
        let layer = ConvLayer::square(2, 8, 10, 3, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 8, 5, 5);
        let arch = ArchConfig::example();
        let input = Tensor4::from_fn(2, 3, 10, 10, |n, c, h, w| {
            Q8_8::from_f64((((n + 1) * (c + 2) * (h + 3) * (w + 5)) % 13) as f64 * 0.25 - 1.5)
        });
        let weights = Tensor4::from_fn(8, 3, 3, 3, |n, c, h, w| {
            Q8_8::from_f64((((n + 2) * (c + 1) + h * w) % 7) as f64 * 0.125 - 0.375)
        });
        (layer, tiling, arch, input, weights)
    }

    #[test]
    fn microarch_matches_functional_simulation() {
        let (layer, tiling, arch, input, weights) = fixture();
        let (micro_out, _) = run_layer_microarch(&arch, &layer, &tiling, &input, &weights).unwrap();
        let (func_out, _) = simulate_functional(&layer, &tiling, &arch, &input, &weights).unwrap();
        assert_eq!(
            micro_out, func_out,
            "signal-level and block-level outputs differ"
        );
    }

    #[test]
    fn microarch_counters_match_block_engine() {
        let (layer, tiling, arch, input, weights) = fixture();
        let (_, trace) = run_layer_microarch(&arch, &layer, &tiling, &input, &weights).unwrap();
        let stats = simulate(&layer, &tiling, &arch).unwrap();
        assert_eq!(trace.lreg_writes, stats.reg.lreg_writes, "LReg writes");
        assert_eq!(
            trace.greg_weight_writes, stats.reg.greg_weight_writes,
            "GReg weight writes"
        );
        assert_eq!(
            trace.greg_input_writes, stats.reg.greg_input_writes,
            "GReg input writes"
        );
        assert_eq!(trace.cycles, stats.compute_cycles, "compute cycles");
    }

    #[test]
    fn microarch_handles_boundary_blocks() {
        // Non-dividing tiling: boundary blocks have clamped sizes and idle
        // padding slots; outputs must still be exact.
        let layer = ConvLayer::square(1, 5, 9, 2, 3, 1).unwrap();
        let tiling = Tiling::clamped(&layer, 1, 3, 4, 4);
        let arch = ArchConfig::example();
        let input = Tensor4::from_fn(1, 2, 9, 9, |_, c, h, w| {
            Q8_8::from_f64(((c + h + 2 * w) % 5) as f64 * 0.5 - 1.0)
        });
        let weights = Tensor4::from_fn(5, 2, 3, 3, |n, c, h, w| {
            Q8_8::from_f64(((n * c + h * w) % 3) as f64 * 0.25)
        });
        let (micro_out, _) = run_layer_microarch(&arch, &layer, &tiling, &input, &weights).unwrap();
        let (func_out, _) = simulate_functional(&layer, &tiling, &arch, &input, &weights).unwrap();
        assert_eq!(micro_out, func_out);
    }

    #[test]
    fn microarch_handles_stride_and_padding() {
        let layer = ConvLayer::builder()
            .batch(1)
            .out_channels(4)
            .in_channels(2)
            .input(9, 9)
            .kernel(3, 3)
            .stride(2)
            .padding(conv_model::Padding::same(3))
            .build()
            .unwrap();
        let tiling = Tiling::clamped(&layer, 1, 4, 3, 3);
        let arch = ArchConfig::example();
        let input = Tensor4::from_fn(1, 2, 9, 9, |_, c, h, w| {
            Q8_8::from_f64(((3 * c + 2 * h + w) % 7) as f64 * 0.25 - 0.75)
        });
        let weights = Tensor4::from_fn(4, 2, 3, 3, |n, c, h, w| {
            Q8_8::from_f64(((n + c + h + w) % 4) as f64 * 0.5 - 0.5)
        });
        let (micro_out, _) = run_layer_microarch(&arch, &layer, &tiling, &input, &weights).unwrap();
        let (func_out, _) = simulate_functional(&layer, &tiling, &arch, &input, &weights).unwrap();
        assert_eq!(micro_out, func_out);
    }

    #[test]
    fn lockstep_mux_counts() {
        // Input MUXes select once per row per cycle; weight MUXes once per
        // used column per cycle.
        let (layer, tiling, arch, input, weights) = fixture();
        let (_, trace) = run_layer_microarch(&arch, &layer, &tiling, &input, &weights).unwrap();
        assert_eq!(trace.input_mux_selects % trace.cycles, 0);
        assert_eq!(trace.weight_mux_selects % trace.cycles, 0);
        assert_eq!(trace.input_mux_selects / trace.cycles, arch.pe_rows as u64);
    }
}
