//! Per-block execution traces: where the cycles of a simulation go.
//!
//! [`simulate_traced`](crate::simulate_traced) records, alongside the usual
//! [`SimStats`], an [`ExecutionTrace`]: one timeline per block *shape class*
//! (the same classes the fast path of `simulate` evaluates) describing how a
//! member block spends its cycles — the one-off DRAM first-access latency,
//! the per-iteration compute span, the per-iteration unhidden load stall and
//! the one-off output drain stall — together with the class multiplicity, so
//! the trace stays compact even for grids of tens of thousands of blocks.
//! Per-block expansion ([`TraceOptions::expand`]) lists every block of the
//! grid in execution order with a reference into the class table, which is
//! what the VCD rendering ([`ExecutionTrace::to_vcd`]) walks.
//!
//! # The trace can never lie
//!
//! In the spirit of the hardware-counter validation literature, a trace is
//! only trustworthy if it is provably consistent with the totals it claims
//! to explain. The internal builder accumulates its totals with *exactly*
//! the arithmetic of the simulator's accumulator (plain sums for compute
//! cycles, blocks and iterations; saturating sums for stall cycles), and
//! [`ExecutionTrace`] construction asserts that they reproduce the
//! [`SimStats`] fields bit-identically — there is no way to obtain a trace
//! whose intervals sum to anything other than the stats it ships with. The
//! `trace_properties` proptest re-derives the totals from the serialized
//! segments and pins the same identity across random layers × tilings × all
//! five Table I implementations.

use serde::{Serialize, Value};

use crate::stats::SimStats;

/// Limits-style caps bounding every trace a caller can request, in the
/// mould of [`crate::caps`]: oversized requests are rejected with a typed
/// [`SimError::TraceTooLarge`](crate::SimError::TraceTooLarge) *before* any
/// expansion is allocated.
pub mod caps {
    /// Max distinct block shape classes (and therefore interval lists) an
    /// [`ExecutionTrace`](super::ExecutionTrace) may contain. Each class
    /// carries at most four segments, so this also bounds the interval
    /// count. Real grids collapse to dozens of classes; hitting this cap
    /// means the request is pathological, not that the layer is big.
    pub const MAX_TRACE_CLASSES: u128 = 4096;
    /// Max blocks a per-block expansion
    /// ([`TraceOptions::expand`](super::TraceOptions)) — and therefore a
    /// VCD rendering — may enumerate.
    pub const MAX_TRACE_BLOCKS: u128 = 4096;
}

/// What a trace request should record.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct TraceOptions {
    /// Also expand the class table into the full per-block list (execution
    /// order), bounded by [`caps::MAX_TRACE_BLOCKS`]. Required for VCD
    /// rendering.
    pub expand: bool,
}

/// One kind of activity within a block's timeline.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TracePhase {
    /// The one-off DRAM first-access latency charged to the block.
    DramLatency,
    /// PE-array compute (one span per GBuf-load iteration).
    Compute,
    /// Unhidden input/weight load stall (the part of an iteration's DRAM
    /// transfer the overlapping compute could not cover).
    LoadStall,
    /// Unhidden output write-back (drain) stall, charged once per block.
    DrainStall,
}

impl TracePhase {
    /// The wire name of the phase (snake_case, as serialized).
    #[must_use]
    pub fn as_str(&self) -> &'static str {
        match self {
            TracePhase::DramLatency => "dram_latency",
            TracePhase::Compute => "compute",
            TracePhase::LoadStall => "load_stall",
            TracePhase::DrainStall => "drain_stall",
        }
    }
}

impl Serialize for TracePhase {
    fn to_value(&self) -> Value {
        Value::String(self.as_str().to_string())
    }
}

/// One interval of a block's timeline: `repeat` back-to-back spans of
/// `cycles` cycles each, all in the same [`TracePhase`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceSegment {
    /// What the block is doing during this interval.
    pub phase: TracePhase,
    /// Length of one span in core cycles.
    pub cycles: u64,
    /// How many times the span repeats (`iterations_per_block` for the
    /// per-iteration phases, 1 for the one-off phases).
    pub repeat: u64,
}

impl TraceSegment {
    /// Total cycles of the interval (`cycles · repeat`, saturating — the
    /// same arithmetic the simulator's stall accumulation uses).
    #[must_use]
    pub fn total_cycles(&self) -> u64 {
        self.cycles.saturating_mul(self.repeat)
    }
}

/// The timeline of one block shape class, shared by `multiplicity` blocks.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct TraceClass {
    /// Images per block (`b'`).
    pub b: usize,
    /// Output channels per block (`z'`).
    pub z: usize,
    /// Output rows per block (`y'`).
    pub y: usize,
    /// Output columns per block (`x'`).
    pub x: usize,
    /// Image-clipped input columns actually fetched.
    pub clip_x: u64,
    /// Image-clipped input rows actually fetched.
    pub clip_y: u64,
    /// How many blocks of the grid share this shape.
    pub multiplicity: u64,
    /// GBuf-load iterations per block (the input-channel count).
    pub iterations_per_block: u64,
    /// PEs active during the compute spans (`rows_used · cols_used`).
    pub active_pes: u64,
    /// Rollup: compute cycles of ONE block of this class.
    pub compute_cycles: u64,
    /// Rollup: unhidden stall cycles of ONE block of this class.
    pub stall_cycles: u64,
    /// The timeline (zero-length intervals omitted). Summing
    /// [`TraceSegment::total_cycles`] over the compute segments gives
    /// `compute_cycles`; a saturating sum over the stall segments gives
    /// `stall_cycles`.
    pub segments: Vec<TraceSegment>,
}

/// One expanded block of the grid, in execution order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceBlock {
    /// First image index.
    pub i0: usize,
    /// Images in this block.
    pub b: usize,
    /// First output channel.
    pub z0: usize,
    /// Output channels in this block.
    pub z: usize,
    /// First output row.
    pub y0: usize,
    /// Output rows in this block.
    pub y: usize,
    /// First output column.
    pub x0: usize,
    /// Output columns in this block.
    pub x: usize,
    /// Index into [`ExecutionTrace::classes`] of this block's timeline.
    pub class: usize,
}

/// The [`SimStats`] fields a trace must reproduce bit-identically.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize)]
pub struct TraceTotals {
    /// Total compute cycles across all blocks.
    pub compute_cycles: u64,
    /// Total unhidden stall cycles across all blocks.
    pub stall_cycles: u64,
    /// Total blocks in the grid.
    pub blocks: u64,
    /// Total GBuf-load iterations.
    pub iterations: u64,
}

/// An execution trace, provably consistent with the [`SimStats`] of the
/// same simulation (see the module docs).
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct ExecutionTrace {
    /// One timeline per block shape class, in first-occurrence (execution)
    /// order.
    pub classes: Vec<TraceClass>,
    /// The expanded per-block list (empty unless
    /// [`TraceOptions::expand`] was set).
    pub blocks: Vec<TraceBlock>,
    /// Interval sums, equal to the corresponding [`SimStats`] fields.
    pub totals: TraceTotals,
}

/// What the engine observed about one block shape class — the bridge from
/// the private per-block counters to the public trace types.
pub(crate) struct ClassObservation {
    pub b: usize,
    pub z: usize,
    pub y: usize,
    pub x: usize,
    pub clip_x: u64,
    pub clip_y: u64,
    /// Blocks sharing this shape.
    pub multiplicity: u64,
    /// GBuf-load iterations per block (input channels).
    pub iterations: u64,
    /// PEs active in a pass.
    pub active_pes: u64,
    /// Compute cycles of one block.
    pub compute_cycles: u64,
    /// Compute cycles of one iteration (`compute_cycles / iterations`,
    /// exact — compute cycles are a multiple of the channel count).
    pub compute_per_iteration: u64,
    /// Unhidden load stall of one iteration.
    pub load_per_iteration: u64,
    /// Unhidden output drain stall of one block.
    pub drain: u64,
    /// DRAM first-access latency charged to one block.
    pub latency: u64,
    /// Total unhidden stall of one block, exactly as the simulator's
    /// `block_stall` computed it.
    pub block_stall: u64,
}

/// Accumulates class observations into an [`ExecutionTrace`] while
/// mirroring, operation for operation, the arithmetic of the simulator's
/// accumulator — so the totals it hands to [`TraceBuilder::finish`] agree
/// with the [`SimStats`] by construction.
#[derive(Default)]
pub(crate) struct TraceBuilder {
    classes: Vec<TraceClass>,
    compute_cycles: u64,
    stall_cycles: u64,
    blocks: u64,
    iterations: u64,
}

impl TraceBuilder {
    /// Records one shape class (the engine calls this in the same loop
    /// iteration that feeds the stats accumulator).
    pub(crate) fn add(&mut self, o: &ClassObservation) {
        let mut segments = Vec::with_capacity(4);
        if o.latency > 0 {
            segments.push(TraceSegment {
                phase: TracePhase::DramLatency,
                cycles: o.latency,
                repeat: 1,
            });
        }
        if o.compute_per_iteration > 0 {
            segments.push(TraceSegment {
                phase: TracePhase::Compute,
                cycles: o.compute_per_iteration,
                repeat: o.iterations,
            });
        }
        if o.load_per_iteration > 0 {
            segments.push(TraceSegment {
                phase: TracePhase::LoadStall,
                cycles: o.load_per_iteration,
                repeat: o.iterations,
            });
        }
        if o.drain > 0 {
            segments.push(TraceSegment {
                phase: TracePhase::DrainStall,
                cycles: o.drain,
                repeat: 1,
            });
        }
        self.classes.push(TraceClass {
            b: o.b,
            z: o.z,
            y: o.y,
            x: o.x,
            clip_x: o.clip_x,
            clip_y: o.clip_y,
            multiplicity: o.multiplicity,
            iterations_per_block: o.iterations,
            active_pes: o.active_pes,
            compute_cycles: o.compute_cycles,
            stall_cycles: o.block_stall,
            segments,
        });
        // Exactly the accumulator's operations, in the same order: plain
        // sums where it uses plain sums, saturating where it saturates.
        self.compute_cycles += o.compute_cycles * o.multiplicity;
        self.stall_cycles = self
            .stall_cycles
            .saturating_add(o.block_stall.saturating_mul(o.multiplicity));
        self.blocks += o.multiplicity;
        self.iterations += o.iterations * o.multiplicity;
    }

    /// Seals the trace against the finished stats.
    ///
    /// # Panics
    ///
    /// Panics if the accumulated interval sums disagree with `stats` on any
    /// of `compute_cycles`, `stall_cycles`, `blocks` or `iterations`. This
    /// is the type-layer guarantee that a constructed [`ExecutionTrace`]
    /// can never contradict its [`SimStats`]; because builder and
    /// accumulator share their arithmetic, the condition is unreachable.
    pub(crate) fn finish(self, stats: &SimStats) -> ExecutionTrace {
        let totals = TraceTotals {
            compute_cycles: self.compute_cycles,
            stall_cycles: self.stall_cycles,
            blocks: self.blocks,
            iterations: self.iterations,
        };
        assert_eq!(
            (
                totals.compute_cycles,
                totals.stall_cycles,
                totals.blocks,
                totals.iterations
            ),
            (
                stats.compute_cycles,
                stats.stall_cycles,
                stats.blocks,
                stats.iterations
            ),
            "trace interval sums must reproduce SimStats bit-identically"
        );
        ExecutionTrace {
            classes: self.classes,
            blocks: Vec::new(),
            totals,
        }
    }

    /// Attaches the expanded per-block list (engine-side, after `finish`).
    pub(crate) fn attach_blocks(trace: &mut ExecutionTrace, blocks: Vec<TraceBlock>) {
        trace.blocks = blocks;
    }
}

impl ExecutionTrace {
    /// Renders the trace as a VCD waveform over three signals:
    /// `computing` (1 bit), `dram_stall` (1 bit) and `active_pes` (32-bit
    /// register, nonzero while computing). One time unit is one core cycle.
    ///
    /// Blocks are emitted in execution order. Within a block the
    /// per-iteration compute/load-stall alternation is aggregated into one
    /// compute span followed by one stall span (the JSON segments carry the
    /// per-iteration structure); the block's DRAM first-access latency
    /// opens the block as a stall span. Change count is therefore bounded
    /// by ~4 × [`caps::MAX_TRACE_BLOCKS`].
    ///
    /// Returns `None` when the trace was not expanded
    /// ([`TraceOptions::expand`]) but describes a non-empty grid — VCD
    /// needs the per-block list.
    #[must_use]
    pub fn to_vcd(&self) -> Option<String> {
        if self.blocks.is_empty() && self.totals.blocks > 0 {
            return None;
        }
        let mut out = String::with_capacity(1024 + self.blocks.len() * 48);
        out.push_str("$comment accel_sim execution trace; 1 time unit = 1 core cycle $end\n");
        out.push_str("$timescale 1ns $end\n");
        out.push_str("$scope module accel_sim $end\n");
        out.push_str("$var wire 1 c computing $end\n");
        out.push_str("$var wire 1 s dram_stall $end\n");
        out.push_str("$var reg 32 p active_pes $end\n");
        out.push_str("$upscope $end\n");
        out.push_str("$enddefinitions $end\n");

        // Current signal state; `None` forces the initial dump at #0.
        let mut state: Option<(bool, bool, u64)> = None;
        let mut t: u64 = 0;
        let mut emit = |out: &mut String, t: u64, next: (bool, bool, u64)| {
            if state == Some(next) {
                return;
            }
            out.push_str(&format!("#{t}\n"));
            let (c, s, p) = next;
            if state.map(|(pc, _, _)| pc) != Some(c) {
                out.push_str(if c { "1c\n" } else { "0c\n" });
            }
            if state.map(|(_, ps, _)| ps) != Some(s) {
                out.push_str(if s { "1s\n" } else { "0s\n" });
            }
            if state.map(|(_, _, pp)| pp) != Some(p) {
                out.push_str(&format!("b{p:b} p\n"));
            }
            state = Some(next);
        };

        for block in &self.blocks {
            let class = &self.classes[block.class];
            let latency = class
                .segments
                .iter()
                .find(|seg| seg.phase == TracePhase::DramLatency)
                .map_or(0, TraceSegment::total_cycles);
            let tail_stall = class.stall_cycles.saturating_sub(latency);
            for (computing, stall, pes, dur) in [
                (false, true, 0, latency),
                (true, false, class.active_pes, class.compute_cycles),
                (false, true, 0, tail_stall),
            ] {
                if dur > 0 {
                    emit(&mut out, t, (computing, stall, pes));
                    t = t.saturating_add(dur);
                }
            }
        }
        emit(&mut out, t, (false, false, 0));
        Some(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn observation() -> ClassObservation {
        ClassObservation {
            b: 1,
            z: 8,
            y: 6,
            x: 6,
            clip_x: 8,
            clip_y: 8,
            multiplicity: 4,
            iterations: 4,
            active_pes: 96,
            compute_cycles: 720,
            compute_per_iteration: 180,
            load_per_iteration: 20,
            drain: 3,
            latency: 100,
            block_stall: 4 * 20 + 3 + 100,
        }
    }

    fn stats_for(o: &ClassObservation) -> SimStats {
        SimStats {
            compute_cycles: o.compute_cycles * o.multiplicity,
            stall_cycles: o.block_stall * o.multiplicity,
            blocks: o.multiplicity,
            iterations: o.iterations * o.multiplicity,
            ..SimStats::default()
        }
    }

    #[test]
    fn builder_totals_match_stats() {
        let o = observation();
        let mut b = TraceBuilder::default();
        b.add(&o);
        let trace = b.finish(&stats_for(&o));
        assert_eq!(trace.classes.len(), 1);
        let class = &trace.classes[0];
        assert_eq!(class.segments.len(), 4);
        let compute: u64 = class
            .segments
            .iter()
            .filter(|s| s.phase == TracePhase::Compute)
            .map(TraceSegment::total_cycles)
            .sum();
        assert_eq!(compute, class.compute_cycles);
        let stall = class
            .segments
            .iter()
            .filter(|s| s.phase != TracePhase::Compute)
            .fold(0u64, |acc, s| acc.saturating_add(s.total_cycles()));
        assert_eq!(stall, class.stall_cycles);
    }

    #[test]
    #[should_panic(expected = "bit-identically")]
    fn inconsistent_stats_refused() {
        let o = observation();
        let mut b = TraceBuilder::default();
        b.add(&o);
        let mut stats = stats_for(&o);
        stats.stall_cycles += 1;
        let _ = b.finish(&stats);
    }

    #[test]
    fn zero_length_segments_omitted() {
        let mut o = observation();
        o.load_per_iteration = 0;
        o.drain = 0;
        o.latency = 0;
        o.block_stall = 0;
        let mut b = TraceBuilder::default();
        b.add(&o);
        let trace = b.finish(&stats_for(&o));
        assert_eq!(trace.classes[0].segments.len(), 1);
        assert_eq!(trace.classes[0].segments[0].phase, TracePhase::Compute);
    }

    #[test]
    fn vcd_has_header_and_changes() {
        let o = observation();
        let mut b = TraceBuilder::default();
        b.add(&o);
        let mut trace = b.finish(&stats_for(&o));
        TraceBuilder::attach_blocks(
            &mut trace,
            (0..4)
                .map(|i| TraceBlock {
                    i0: 0,
                    b: 1,
                    z0: 0,
                    z: 8,
                    y0: 0,
                    y: 6,
                    x0: 6 * i,
                    x: 6,
                    class: 0,
                })
                .collect(),
        );
        let vcd = trace.to_vcd().unwrap();
        assert!(vcd.contains("$timescale"));
        assert!(vcd.contains("$enddefinitions $end"));
        assert!(vcd.contains("$var wire 1 c computing $end"));
        // Block 0: stall 100, compute 720, stall 83; block 1's leading
        // latency merges with block 0's tail stall, so its compute span
        // opens at 903 + 100 = 1003.
        assert!(vcd.contains("#0\n"));
        assert!(vcd.contains("#100\n"));
        assert!(vcd.contains("#820\n"));
        assert!(vcd.contains("#1003\n"));
        // Final timestamp: 4 blocks x 903 cycles.
        assert!(vcd.contains("#3612\n"));
        assert!(vcd.contains("b1100000 p"));
    }

    #[test]
    fn unexpanded_trace_has_no_vcd() {
        let o = observation();
        let mut b = TraceBuilder::default();
        b.add(&o);
        let trace = b.finish(&stats_for(&o));
        assert!(trace.to_vcd().is_none());
    }

    #[test]
    fn phases_serialize_snake_case() {
        assert_eq!(
            TracePhase::DramLatency.to_value(),
            Value::String("dram_latency".into())
        );
        assert_eq!(TracePhase::LoadStall.as_str(), "load_stall");
    }
}
