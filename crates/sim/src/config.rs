//! Accelerator configuration (the architecture of Fig. 10/11 and the five
//! implementations of Table I).

use serde::{Deserialize, Serialize};

/// DRAM timing/interface model: the paper evaluates a 2 GB DDR3 part with
/// 6.4 GB/s peak bandwidth at 100 MHz, against a 500 MHz core
/// (Section VI).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DramConfig {
    /// Peak bandwidth in bytes per second.
    pub bandwidth_bytes_per_s: f64,
    /// First-access latency in core cycles (row activation + controller).
    pub latency_cycles: u64,
}

impl Default for DramConfig {
    fn default() -> Self {
        DramConfig {
            bandwidth_bytes_per_s: 6.4e9,
            latency_cycles: 100,
        }
    }
}

/// Limits-style caps on every [`ArchConfig`] field, enforced by
/// [`ArchConfig::validate`].
///
/// The struct is `pub` + `Deserialize` and, since the `/v1/*` endpoints
/// accept full `arch` objects, configurations arrive from untrusted JSON.
/// The caps keep every derived quantity (PE count, LReg/GBuf/GReg totals,
/// effective on-chip memory, stall arithmetic) far away from integer
/// overflow and keep the planner's feasibility region bounded, so a hostile
/// configuration can be *rejected with the violated invariant named* instead
/// of panicking, hanging or exhausting memory. Generous: every cap is well
/// beyond any design the paper's model is meaningful for (Table I tops out
/// at 64×32 PEs and 131.625 KiB effective memory).
pub mod caps {
    /// Max PE array rows / columns (Table I's largest array is 64×32).
    pub const MAX_PE_DIM: usize = 4096;
    /// Max LReg entries (16-bit Psum slots) per PE.
    pub const MAX_LREG_ENTRIES_PER_PE: usize = 1 << 16;
    /// Max entries in each GBuf (input and weight separately).
    pub const MAX_GBUF_ENTRIES: usize = 1 << 26;
    /// Max total GReg bytes.
    pub const MAX_GREG_BYTES: usize = 1 << 30;
    /// Max entries in one input GReg segment.
    pub const MAX_GREG_SEGMENT_ENTRIES: usize = 1 << 20;
    /// Max *derived* effective on-chip memory (LRegs + GBufs) in bytes —
    /// 1 GiB, mirroring the service's `mem_kib` limit. This is the cap
    /// that bounds the tiling-search feasibility region a configuration
    /// can open up.
    pub const MAX_EFFECTIVE_ONCHIP_BYTES: u128 = 1 << 30;
    /// Core clock range in Hz.
    pub const MIN_CORE_FREQ_HZ: f64 = 1e3;
    /// Core clock range in Hz.
    pub const MAX_CORE_FREQ_HZ: f64 = 1e12;
    /// DRAM bandwidth range in bytes/s.
    pub const MIN_DRAM_BW: f64 = 1e3;
    /// DRAM bandwidth range in bytes/s.
    pub const MAX_DRAM_BW: f64 = 1e15;
    /// Max first-access DRAM latency in core cycles.
    pub const MAX_DRAM_LATENCY_CYCLES: u64 = 1_000_000_000;
}

/// Full architectural configuration of the accelerator.
///
/// Use [`ArchConfig::implementation`] for the five Table I designs or the
/// builder-style setters for custom ones.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ArchConfig {
    /// PE array rows `p`.
    pub pe_rows: usize,
    /// PE array columns `q`.
    pub pe_cols: usize,
    /// PE group rows `p_g` (a weight GReg row is shared by `p_g` PE rows).
    pub group_rows: usize,
    /// PE group columns `q_g` (an input GReg segment feeds `q_g` PEs).
    pub group_cols: usize,
    /// LReg entries (16-bit Psum slots) per PE — `r` in the paper.
    pub lreg_entries_per_pe: usize,
    /// Input GBuf capacity in 16-bit entries.
    pub igbuf_entries: usize,
    /// Weight GBuf capacity in 16-bit entries.
    pub wgbuf_entries: usize,
    /// Total GReg capacity in bytes (Table I's "GReg size"), used for
    /// utilization and energy reporting.
    pub greg_bytes: usize,
    /// Capacity of one input GReg segment in 16-bit entries (64 in the
    /// Fig. 11 example). Bounds the per-PE-row input halo `xs'·ys'`.
    pub greg_segment_entries: usize,
    /// Core clock in Hz.
    pub core_freq_hz: f64,
    /// DRAM interface model.
    pub dram: DramConfig,
}

impl ArchConfig {
    /// The example design of Section V: 16×16 PEs, 4×4 groups, 128-entry
    /// LRegs per PE (64 KB of Psums total), 2 KB IGBuf + 0.5 KB WGBuf.
    /// This is implementation 1 of Table I.
    #[must_use]
    pub fn example() -> Self {
        ArchConfig::implementation(1)
    }

    /// One of the five implementations of Table I.
    ///
    /// | # | PEs    | GBuf    | LReg/PE | GReg  | effective memory |
    /// |---|--------|---------|---------|-------|------------------|
    /// | 1 | 16×16  | 2.5 KB  | 256 B   | 10 KB | 66.5 KB          |
    /// | 2 | 32×16  | 2.5 KB  | 128 B   | 15 KB | 66.5 KB          |
    /// | 3 | 32×32  | 2.5 KB  | 64 B    | 18 KB | 66.5 KB          |
    /// | 4 | 32×32  | 3.625 KB| 128 B   | 27 KB | 131.625 KB       |
    /// | 5 | 64×32  | 3.625 KB| 64 B    | 36 KB | 131.625 KB       |
    ///
    /// # Panics
    ///
    /// Panics if `index` is not in `1..=5`.
    #[must_use]
    pub fn implementation(index: usize) -> Self {
        // (p, q, lreg bytes/PE, igbuf entries, greg KB)
        let (p, q, lreg_bytes, igbuf_entries, greg_kb) = match index {
            1 => (16, 16, 256, 1024, 10),
            2 => (32, 16, 128, 1024, 15),
            3 => (32, 32, 64, 1024, 18),
            4 => (32, 32, 128, 1600, 27),
            5 => (64, 32, 64, 1600, 36),
            other => panic!("Table I defines implementations 1-5, got {other}"),
        };
        ArchConfig {
            pe_rows: p,
            pe_cols: q,
            group_rows: 4,
            group_cols: 4,
            lreg_entries_per_pe: lreg_bytes / 2,
            igbuf_entries,
            wgbuf_entries: 256,
            greg_bytes: greg_kb * 1024,
            greg_segment_entries: 64,
            core_freq_hz: 500e6,
            dram: DramConfig::default(),
        }
    }

    /// Total number of PEs.
    #[must_use]
    pub fn pe_count(&self) -> usize {
        self.pe_rows * self.pe_cols
    }

    /// Total Psum storage across all LRegs, in 16-bit words.
    #[must_use]
    pub fn lreg_total_entries(&self) -> usize {
        self.pe_count() * self.lreg_entries_per_pe
    }

    /// LReg capacity per PE in bytes.
    #[must_use]
    pub fn lreg_bytes_per_pe(&self) -> usize {
        self.lreg_entries_per_pe * 2
    }

    /// Total GBuf capacity (input + weight) in bytes.
    #[must_use]
    pub fn gbuf_bytes(&self) -> usize {
        (self.igbuf_entries + self.wgbuf_entries) * 2
    }

    /// The paper's *effective on-chip memory*: Psum LRegs + GBufs (GRegs
    /// hold duplicated data and do not count — Section III).
    #[must_use]
    pub fn effective_onchip_bytes(&self) -> usize {
        self.lreg_total_entries() * 2 + self.gbuf_bytes()
    }

    /// Effective on-chip memory in 16-bit words (the `S` of the theory).
    #[must_use]
    pub fn effective_onchip_words(&self) -> usize {
        self.effective_onchip_bytes() / 2
    }

    /// DRAM bandwidth expressed in 16-bit words per core cycle.
    #[must_use]
    pub fn dram_words_per_cycle(&self) -> f64 {
        self.dram.bandwidth_bytes_per_s / self.core_freq_hz / 2.0
    }

    /// A hashable key covering *every* field of this configuration (float
    /// fields by bit pattern, so distinct configurations never alias) —
    /// what memo caches keyed by architecture should use.
    ///
    /// Defined here, next to the struct, via exhaustive destructuring: when
    /// `ArchConfig` grows a field, this method stops compiling and forces
    /// the key (and therefore every cache) to account for it.
    #[must_use]
    pub fn cache_key(&self) -> ArchCacheKey {
        let ArchConfig {
            pe_rows,
            pe_cols,
            group_rows,
            group_cols,
            lreg_entries_per_pe,
            igbuf_entries,
            wgbuf_entries,
            greg_bytes,
            greg_segment_entries,
            core_freq_hz,
            dram,
        } = *self;
        let DramConfig {
            bandwidth_bytes_per_s,
            latency_cycles,
        } = dram;
        ArchCacheKey {
            pe_rows,
            pe_cols,
            group_rows,
            group_cols,
            lreg_entries_per_pe,
            igbuf_entries,
            wgbuf_entries,
            greg_bytes,
            greg_segment_entries,
            core_freq_bits: core_freq_hz.to_bits(),
            dram_bw_bits: bandwidth_bytes_per_s.to_bits(),
            dram_latency: latency_cycles,
        }
    }

    /// Validates the structural invariants (group sizes divide the array,
    /// everything positive) and the [`caps`]-module limits on every field
    /// plus the derived effective on-chip memory.
    ///
    /// Safe on *any* field values — including `usize::MAX` and non-finite
    /// floats from hostile JSON — because every cap is checked before the
    /// corresponding product is formed (and the one derived product is
    /// computed in `u128`). Boundaries that accept untrusted
    /// configurations surface the returned message as
    /// [`SimError::InvalidArch`](crate::SimError::InvalidArch).
    ///
    /// # Errors
    ///
    /// Returns a description of the violated invariant.
    pub fn validate(&self) -> Result<(), String> {
        if self.pe_rows == 0 || self.pe_cols == 0 {
            return Err("PE array must be non-empty".into());
        }
        if self.pe_rows > caps::MAX_PE_DIM || self.pe_cols > caps::MAX_PE_DIM {
            return Err(format!(
                "PE array {}x{} exceeds the {}x{} cap",
                self.pe_rows,
                self.pe_cols,
                caps::MAX_PE_DIM,
                caps::MAX_PE_DIM
            ));
        }
        if self.group_rows == 0 || self.group_cols == 0 {
            return Err("PE groups must be non-empty".into());
        }
        if !self.pe_rows.is_multiple_of(self.group_rows) {
            return Err(format!(
                "group rows {} must divide PE rows {}",
                self.group_rows, self.pe_rows
            ));
        }
        if !self.pe_cols.is_multiple_of(self.group_cols) {
            return Err(format!(
                "group cols {} must divide PE cols {}",
                self.group_cols, self.pe_cols
            ));
        }
        if self.lreg_entries_per_pe == 0 {
            return Err("LRegs must hold at least one Psum".into());
        }
        if self.lreg_entries_per_pe > caps::MAX_LREG_ENTRIES_PER_PE {
            return Err(format!(
                "LReg size {} entries/PE exceeds the {} cap",
                self.lreg_entries_per_pe,
                caps::MAX_LREG_ENTRIES_PER_PE
            ));
        }
        if self.igbuf_entries == 0 || self.wgbuf_entries == 0 {
            return Err("GBufs must be non-empty".into());
        }
        if self.igbuf_entries > caps::MAX_GBUF_ENTRIES
            || self.wgbuf_entries > caps::MAX_GBUF_ENTRIES
        {
            return Err(format!(
                "GBuf size {}/{} entries exceeds the {} cap",
                self.igbuf_entries,
                self.wgbuf_entries,
                caps::MAX_GBUF_ENTRIES
            ));
        }
        if self.greg_bytes == 0 || self.greg_segment_entries == 0 {
            return Err("GRegs must be non-empty".into());
        }
        if self.greg_bytes > caps::MAX_GREG_BYTES {
            return Err(format!(
                "GReg size {} bytes exceeds the {} cap",
                self.greg_bytes,
                caps::MAX_GREG_BYTES
            ));
        }
        if self.greg_segment_entries > caps::MAX_GREG_SEGMENT_ENTRIES {
            return Err(format!(
                "GReg segment {} entries exceeds the {} cap",
                self.greg_segment_entries,
                caps::MAX_GREG_SEGMENT_ENTRIES
            ));
        }
        // Derived cap, formed after the per-field caps so the products
        // cannot overflow even u128 (4096² PEs × 2¹⁶ entries × 2 B ≪ 2¹²⁸).
        let effective = u128::from(self.pe_rows as u64)
            * u128::from(self.pe_cols as u64)
            * u128::from(self.lreg_entries_per_pe as u64)
            * 2
            + (u128::from(self.igbuf_entries as u64) + u128::from(self.wgbuf_entries as u64)) * 2;
        if effective > caps::MAX_EFFECTIVE_ONCHIP_BYTES {
            return Err(format!(
                "effective on-chip memory {effective} bytes (LRegs + GBufs) exceeds the {} cap",
                caps::MAX_EFFECTIVE_ONCHIP_BYTES
            ));
        }
        if !self.core_freq_hz.is_finite()
            || self.core_freq_hz < caps::MIN_CORE_FREQ_HZ
            || self.core_freq_hz > caps::MAX_CORE_FREQ_HZ
        {
            return Err(format!(
                "core frequency must be in [{:e}, {:e}] Hz",
                caps::MIN_CORE_FREQ_HZ,
                caps::MAX_CORE_FREQ_HZ
            ));
        }
        if !self.dram.bandwidth_bytes_per_s.is_finite()
            || self.dram.bandwidth_bytes_per_s < caps::MIN_DRAM_BW
            || self.dram.bandwidth_bytes_per_s > caps::MAX_DRAM_BW
        {
            return Err(format!(
                "DRAM bandwidth must be in [{:e}, {:e}] bytes/s",
                caps::MIN_DRAM_BW,
                caps::MAX_DRAM_BW
            ));
        }
        if self.dram.latency_cycles > caps::MAX_DRAM_LATENCY_CYCLES {
            return Err(format!(
                "DRAM latency {} cycles exceeds the {} cap",
                self.dram.latency_cycles,
                caps::MAX_DRAM_LATENCY_CYCLES
            ));
        }
        Ok(())
    }
}

impl Default for ArchConfig {
    fn default() -> Self {
        ArchConfig::example()
    }
}

/// The value [`ArchConfig::cache_key`] returns: an opaque, hashable,
/// totally-ordered identity of one full architecture configuration. The
/// `Ord` impl (field-lexicographic, floats by bit pattern) gives sweep
/// results a canonical architecture tie-break that is independent of
/// candidate enumeration order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ArchCacheKey {
    pe_rows: usize,
    pe_cols: usize,
    group_rows: usize,
    group_cols: usize,
    lreg_entries_per_pe: usize,
    igbuf_entries: usize,
    wgbuf_entries: usize,
    greg_bytes: usize,
    greg_segment_entries: usize,
    core_freq_bits: u64,
    dram_bw_bits: u64,
    dram_latency: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_effective_memory() {
        // Paper Table I: implementations 1-3 have 66.5 KB effective memory,
        // 4-5 have 131.625 KB.
        for i in 1..=3 {
            let c = ArchConfig::implementation(i);
            assert_eq!(c.effective_onchip_bytes(), 665 * 1024 / 10); // 66.5 KB
        }
        for i in 4..=5 {
            let c = ArchConfig::implementation(i);
            assert_eq!(c.effective_onchip_bytes() as f64, 131.625 * 1024.0);
        }
    }

    #[test]
    fn table1_pe_counts() {
        let pes: Vec<usize> = (1..=5)
            .map(|i| ArchConfig::implementation(i).pe_count())
            .collect();
        assert_eq!(pes, vec![256, 512, 1024, 1024, 2048]);
    }

    #[test]
    fn table1_psum_capacity_constant_within_memory_class() {
        // Implementations 1-3 all provide 64 KB of Psum storage.
        for i in 1..=3 {
            assert_eq!(
                ArchConfig::implementation(i).lreg_total_entries(),
                32768,
                "implementation {i}"
            );
        }
        for i in 4..=5 {
            assert_eq!(ArchConfig::implementation(i).lreg_total_entries(), 65536);
        }
    }

    #[test]
    fn all_implementations_validate() {
        for i in 1..=5 {
            ArchConfig::implementation(i).validate().unwrap();
        }
    }

    #[test]
    #[should_panic(expected = "implementations 1-5")]
    fn implementation_0_panics() {
        let _ = ArchConfig::implementation(0);
    }

    #[test]
    fn invalid_group_rejected() {
        let mut c = ArchConfig::example();
        c.group_rows = 5;
        assert!(c.validate().is_err());
    }

    #[test]
    fn caps_reject_extreme_fields_without_panicking() {
        // Each case sets one field to an extreme value; validate must name
        // the violated cap rather than overflow computing derived sizes.
        let base = ArchConfig::example();
        let cases: Vec<(ArchConfig, &str)> = vec![
            (
                ArchConfig {
                    pe_rows: usize::MAX,
                    pe_cols: usize::MAX,
                    ..base
                },
                "cap",
            ),
            (
                ArchConfig {
                    lreg_entries_per_pe: usize::MAX,
                    ..base
                },
                "cap",
            ),
            (
                ArchConfig {
                    igbuf_entries: usize::MAX,
                    ..base
                },
                "cap",
            ),
            (
                ArchConfig {
                    greg_bytes: usize::MAX,
                    ..base
                },
                "cap",
            ),
            (
                ArchConfig {
                    greg_segment_entries: 0,
                    ..base
                },
                "non-empty",
            ),
            (
                ArchConfig {
                    core_freq_hz: f64::NAN,
                    ..base
                },
                "frequency",
            ),
            (
                ArchConfig {
                    core_freq_hz: f64::INFINITY,
                    ..base
                },
                "frequency",
            ),
            (
                ArchConfig {
                    dram: DramConfig {
                        bandwidth_bytes_per_s: 0.0,
                        latency_cycles: 100,
                    },
                    ..base
                },
                "bandwidth",
            ),
            (
                ArchConfig {
                    dram: DramConfig {
                        bandwidth_bytes_per_s: f64::NAN,
                        latency_cycles: 100,
                    },
                    ..base
                },
                "bandwidth",
            ),
            (
                ArchConfig {
                    dram: DramConfig {
                        bandwidth_bytes_per_s: 6.4e9,
                        latency_cycles: u64::MAX,
                    },
                    ..base
                },
                "latency",
            ),
        ];
        for (arch, needle) in cases {
            let msg = arch.validate().unwrap_err();
            assert!(msg.contains(needle), "{msg}");
        }
    }

    #[test]
    fn derived_effective_memory_cap() {
        // Each field individually passes its cap, but the derived effective
        // memory (4096² PEs × 2¹⁶ entries × 2 B = 2 TiB) blows the 1 GiB
        // derived cap — the exact hostile shape that would explode the
        // planner's feasibility region.
        let arch = ArchConfig {
            pe_rows: 4096,
            pe_cols: 4096,
            group_rows: 4,
            group_cols: 4,
            lreg_entries_per_pe: 1 << 16,
            ..ArchConfig::example()
        };
        let msg = arch.validate().unwrap_err();
        assert!(msg.contains("effective on-chip memory"), "{msg}");
    }

    #[test]
    fn dram_words_per_cycle() {
        let c = ArchConfig::example();
        // 6.4 GB/s at 500 MHz = 12.8 B/cycle = 6.4 words/cycle.
        assert!((c.dram_words_per_cycle() - 6.4).abs() < 1e-12);
    }
}
