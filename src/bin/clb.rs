//! `clb` — command-line interface to the library.
//!
//! ```text
//! clb bound    --co 512 --size 28 --ci 256 [--k 3] [--stride 1] [--batch 3] [--mem-kib 66.5]
//! clb sweep    --co 512 --size 28 --ci 256 ...           # all dataflows at one memory size
//! clb plan     --co 512 --size 28 --ci 256 [--implem 1]  # tiling + simulation on an implementation
//! clb simulate --co 512 --size 28 --ci 256 --tb 1 --tz 16 --ty 14 --tx 14 [--implem 1]
//!              [--trace json|vcd] [--trace-out FILE]
//! clb network  --net vgg16|alexnet|resnet50|inception|fc [--batch 3] [--implem 1] [--json true]
//! clb network  --net-json '{"name":"n","batch":1,"layers":[{"co":64,"ci":3,"size":224}]}'
//! clb dse      --co 512 --size 28 --ci 256 [--pe-rows 16,24,32] [--lreg 64,128] ...
//! clb dse      --net vgg16 [--batch 3] [--pe-rows 16,24,32] ...   # whole-model sweep
//! clb dse      --net-json '<json>' [--pe-rows 16,24,32] ...       # custom-model sweep
//! clb serve    [--port 8080] [--threads 0] [--io-workers 0] [--queue 256] [--result-cache 1024]
//!              [--keepalive-requests 128] [--keepalive-idle-ms 5000] [--max-connections 1024]
//!              [--drain-ms 5000] [--allow-shutdown true] [--log true]
//! ```
//!
//! Every verb that takes `--implem` also takes `--arch '<json>'` — a full
//! custom architecture object (fields default to Table I implementation 1),
//! the CLI mirror of the service's `arch` field. `clb dse` sweeps a grid of
//! candidates (comma-separated axis lists over the `--arch` base).

use std::collections::HashMap;
use std::process::ExitCode;

use clb::core::Accelerator;
use clb::model::workloads;
use clb::prelude::*;
use dataflow::{found_minimum, search_dataflow};

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for --{key}")),
    }
}

fn api_error_message(e: clb_service::ApiError) -> String {
    match e {
        clb_service::ApiError::BadRequest(m)
        | clb_service::ApiError::Unprocessable(m)
        | clb_service::ApiError::Internal(m) => m,
    }
}

/// Parses `--arch '<json object>'` — the same schema, defaults
/// (implementation 1) and validation as the service's `arch` field, so the
/// CLI and the API accept exactly the same custom architectures.
fn arch_from_flags(
    flags: &HashMap<String, String>,
) -> Result<Option<accel_sim::ArchConfig>, String> {
    let Some(json) = flags.get("arch") else {
        return Ok(None);
    };
    if flags.contains_key("implem") {
        return Err("specify either --implem or --arch, not both".into());
    }
    let v: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("--arch: invalid JSON: {e}"))?;
    clb_service::arch_from_value(&v)
        .map(Some)
        .map_err(|e| format!("--arch: {}", api_error_message(e)))
}

/// The architecture a verb should analyze: `--arch` JSON when given,
/// otherwise the `--implem` preset (default 1). Returns the configuration
/// plus the label the human-readable output prints.
fn arch_choice_from_flags(
    flags: &HashMap<String, String>,
) -> Result<(accel_sim::ArchConfig, String), String> {
    if let Some(arch) = arch_from_flags(flags)? {
        return Ok((arch, "custom architecture".to_string()));
    }
    let implem: usize = get(flags, "implem", 1)?;
    if !(1..=5).contains(&implem) {
        return Err("--implem must be 1..=5".into());
    }
    Ok((
        accel_sim::ArchConfig::implementation(implem),
        format!("implementation {implem}"),
    ))
}

fn layer_from_flags(flags: &HashMap<String, String>) -> Result<ConvLayer, String> {
    let co: usize = get(flags, "co", 0)?;
    let size: usize = get(flags, "size", 0)?;
    let ci: usize = get(flags, "ci", 0)?;
    if co == 0 || size == 0 || ci == 0 {
        return Err("--co, --size and --ci are required".into());
    }
    let k: usize = get(flags, "k", 3)?;
    let stride: usize = get(flags, "stride", 1)?;
    let batch: usize = get(flags, "batch", 3)?;
    ConvLayer::square(batch, co, size, ci, k, stride)
        .map_err(|e| format!("--co/--size/--ci/--k/--stride/--batch: {e}"))
}

/// The memory size `bound`/`sweep` analyze: `--arch`'s effective on-chip
/// memory when given, `--mem-kib` (default 66.5) otherwise.
fn mem_from_flags(flags: &HashMap<String, String>) -> Result<OnChipMemory, String> {
    match arch_from_flags(flags)? {
        Some(arch) => {
            if flags.contains_key("mem-kib") {
                return Err("specify either --mem-kib or --arch, not both".into());
            }
            Ok(OnChipMemory::from_kib(
                arch.effective_onchip_bytes() as f64 / 1024.0,
            ))
        }
        None => Ok(OnChipMemory::from_kib(get(flags, "mem-kib", 66.5)?)),
    }
}

fn cmd_bound(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let mem = mem_from_flags(flags)?;
    println!("layer: {layer} (R = {})", layer.window_reuse());
    println!("MACs:  {:.3} G", layer.macs() as f64 / 1e9);
    println!("effective on-chip memory: {mem}");
    println!(
        "Theorem 2 (asymptotic): {:.2} MB",
        clb::bound::theorem2_dram_words(&layer, mem) * 2.0 / 1e6
    );
    println!(
        "Eq. 15 practical bound: {:.2} MB",
        clb::bound::dram_bound_bytes(&layer, mem) / 1e6
    );
    println!(
        "naive (no reuse):       {:.2} MB",
        clb::bound::naive_dram_words(&layer) * 2.0 / 1e6
    );
    println!(
        "reduction factor sqrt(R*S) = {:.1}",
        clb::bound::reduction_factor(&layer, mem)
    );
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let mem = mem_from_flags(flags)?;
    println!("layer: {layer}, memory {mem}\n");
    println!("{:<16} {:>10} {:>12}", "dataflow", "DRAM (MB)", "vs bound");
    let bound = clb::bound::dram_bound_bytes(&layer, mem);
    println!(
        "{:<16} {:>10.2} {:>12}",
        "lower bound",
        bound / 1e6,
        "1.00x"
    );
    let min = found_minimum(&layer, mem);
    println!(
        "{:<16} {:>10.2} {:>11.2}x",
        "found minimum",
        min.traffic.total_bytes() as f64 / 1e6,
        min.traffic.total_bytes() as f64 / bound
    );
    for kind in DataflowKind::ALL {
        match search_dataflow(kind, &layer, mem) {
            Some(c) => println!(
                "{:<16} {:>10.2} {:>11.2}x",
                kind.name(),
                c.traffic.total_bytes() as f64 / 1e6,
                c.traffic.total_bytes() as f64 / bound
            ),
            None => println!("{:<16} {:>10} {:>12}", kind.name(), "-", "infeasible"),
        }
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let (arch, label) = arch_choice_from_flags(flags)?;
    let acc = Accelerator::new(arch);
    let report = acc
        .analyze_layer("layer", &layer)
        .map_err(|e| e.to_string())?;
    println!("layer: {layer}");
    println!("{label}: {} PEs", acc.arch().pe_count());
    println!("tiling: {}", report.tiling);
    println!(
        "DRAM:  {:.2} MB ({:+.1}% vs bound)",
        report.stats.dram.total_bytes() as f64 / 1e6,
        (report.dram_vs_bound() - 1.0) * 100.0
    );
    println!(
        "GBuf:  {:.2} MB   Regs: {:.3} G writes",
        report.stats.gbuf.total_bytes() as f64 / 1e6,
        report.stats.reg.total_writes() as f64 / 1e9
    );
    println!(
        "time:  {:.2} ms   energy: {:.2} pJ/MAC   PE util: {:.1}%",
        report.stats.seconds(acc.arch().core_freq_hz) * 1e3,
        report.pj_per_mac(),
        report.stats.utilization.pe * 100.0
    );
    Ok(())
}

/// `clb simulate`: run the cycle simulator on an explicit, user-supplied
/// tiling instead of the planner's choice (the CLI mirror of
/// `POST /v1/simulate`). `--trace json|vcd` additionally records the
/// per-block-class execution trace (VCD always carries the per-block
/// expansion); `--trace-out FILE` writes it to a file instead of stdout.
fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let (arch, label) = arch_choice_from_flags(flags)?;
    let tiling = dataflow::Tiling {
        b: get(flags, "tb", 0)?,
        z: get(flags, "tz", 0)?,
        y: get(flags, "ty", 0)?,
        x: get(flags, "tx", 0)?,
    };
    // Missing flags default to 0 so one message covers both absence and an
    // explicit zero; oversized dims are diagnosed by `simulate` itself.
    if tiling.b == 0 || tiling.z == 0 || tiling.y == 0 || tiling.x == 0 {
        return Err("--tb, --tz, --ty and --tx are required (nonzero)".into());
    }
    let trace_format = match flags.get("trace").map(String::as_str) {
        None => None,
        Some(format @ ("json" | "vcd")) => Some(format),
        Some(other) => return Err(format!("unknown --trace format `{other}` (json|vcd)")),
    };
    let (stats, trace) = match trace_format {
        None => (
            accel_sim::simulate(&layer, &tiling, &arch).map_err(|e| e.to_string())?,
            None,
        ),
        Some(format) => {
            let options = accel_sim::TraceOptions {
                expand: format == "vcd",
            };
            let (stats, trace) = accel_sim::simulate_traced(&layer, &tiling, &arch, &options)
                .map_err(|e| e.to_string())?;
            (stats, Some((format, trace)))
        }
    };
    println!("layer: {layer}");
    println!("{label}: {} PEs", arch.pe_count());
    println!("tiling: {tiling} ({} blocks)", stats.blocks);
    println!(
        "DRAM:  {:.2} MB   GBuf: {:.2} MB   Regs: {:.3} G writes",
        stats.dram.total_bytes() as f64 / 1e6,
        stats.gbuf.total_bytes() as f64 / 1e6,
        stats.reg.total_writes() as f64 / 1e9
    );
    println!(
        "cycles: {} compute + {} stall = {}",
        stats.compute_cycles,
        stats.stall_cycles,
        stats.total_cycles()
    );
    println!(
        "time:  {:.2} ms   PE util: {:.1}%   memory util: {:.1}%",
        stats.seconds(arch.core_freq_hz) * 1e3,
        stats.utilization.pe * 100.0,
        stats.utilization.memory_overall * 100.0
    );
    if let Some((format, trace)) = trace {
        let payload = if format == "vcd" {
            trace
                .to_vcd()
                .ok_or_else(|| "VCD rendering requires an expanded trace".to_string())?
        } else {
            serde_json::to_string_pretty(&trace).map_err(|e| e.to_string())?
        };
        match flags.get("trace-out") {
            Some(path) => {
                std::fs::write(path, &payload)
                    .map_err(|e| format!("cannot write trace to {path}: {e}"))?;
                println!("trace: {} {} bytes -> {path}", payload.len(), format);
            }
            None => println!("{payload}"),
        }
    }
    Ok(())
}

/// Resolves `--net-json '<json>'` — a full custom network object, the CLI
/// mirror of posting `{"net": {...}}` to `/v1/network` — through the same
/// parser and caps the service uses. Returns `None` when the flag is
/// absent (preset `--net` path). The object carries its own `batch`, so
/// `--batch` (and `--net`) conflict with it.
fn net_from_flags(
    flags: &HashMap<String, String>,
) -> Result<Option<(workloads::Network, usize)>, String> {
    let Some(json) = flags.get("net-json") else {
        return Ok(None);
    };
    if flags.contains_key("net") {
        return Err("specify either --net or --net-json, not both".into());
    }
    if flags.contains_key("batch") {
        return Err("a custom network object carries its own `batch`; drop --batch".into());
    }
    let v: serde_json::Value =
        serde_json::from_str(json).map_err(|e| format!("--net-json: invalid JSON: {e}"))?;
    clb_service::network_from_value(&v)
        .map(Some)
        .map_err(|e| format!("--net-json: {}", api_error_message(e)))
}

fn cmd_network(flags: &HashMap<String, String>) -> Result<(), String> {
    let (net, batch) = match net_from_flags(flags)? {
        Some(custom) => custom,
        None => {
            let batch: usize = get(flags, "batch", 3)?;
            let name = flags
                .get("net")
                .cloned()
                .unwrap_or_else(|| "vgg16".to_string());
            let net = clb_service::network_by_name(&name, batch).map_err(api_error_message)?;
            (net, batch)
        }
    };
    let (arch, label) = arch_choice_from_flags(flags)?;
    let acc = Accelerator::new(arch);
    let report = acc.analyze_network(&net).map_err(|e| e.to_string())?;

    if get(flags, "json", false)? {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "{} (batch {batch}) on {label}: {:.1} GMACs",
        net.name(),
        net.total_macs() as f64 / 1e9
    );
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "layer", "DRAM(MB)", "pJ/MAC", "PE util"
    );
    for l in &report.layers {
        println!(
            "{:<12} {:>10.1} {:>10.2} {:>8.1}%",
            l.name,
            l.stats.dram.total_bytes() as f64 / 1e6,
            l.pj_per_mac(),
            l.stats.utilization.pe * 100.0
        );
    }
    println!(
        "\ntotal: {:.1} MB DRAM, {:.2} pJ/MAC, {:.3} s, {:.2} W",
        report.totals.dram.total_bytes() as f64 / 1e6,
        report.pj_per_mac(),
        report.seconds,
        report.power_w()
    );
    Ok(())
}

/// Parses a comma-separated list flag (`--pe-rows 16,24,32`); absent flags
/// fall back to the single default value.
fn get_list(
    flags: &HashMap<String, String>,
    key: &str,
    default: usize,
) -> Result<Vec<usize>, String> {
    match flags.get(key) {
        None => Ok(vec![default]),
        Some(raw) => {
            let mut values = Vec::new();
            for part in raw.split(',') {
                let v: usize = part
                    .trim()
                    .parse()
                    .map_err(|_| format!("invalid value `{part}` in --{key}"))?;
                values.push(v);
            }
            if values.is_empty() {
                return Err(format!("--{key} needs at least one value"));
            }
            Ok(values)
        }
    }
}

/// The staged-mode CLI flags, mirroring `/v1/dse`'s staged fields: any of
/// `--objective`, `--top-k` or `--stream` switches `clb dse` from the
/// legacy evaluate-everything sweep to the bound-pruned staged engine
/// (larger candidate cap, ranked frontier, optional live progress).
fn staged_flags(
    flags: &HashMap<String, String>,
) -> Result<Option<(clb::core::Objective, usize, bool)>, String> {
    use clb_service::api::limits;
    if !["objective", "top-k", "stream"]
        .iter()
        .any(|k| flags.contains_key(*k))
    {
        return Ok(None);
    }
    let objective = match flags.get("objective") {
        None => clb::core::Objective::Cycles,
        Some(name) => clb::core::Objective::parse(name).ok_or_else(|| {
            format!("unknown --objective `{name}` (expected cycles, traffic, energy or pareto)")
        })?,
    };
    let top_k: usize = get(flags, "top-k", limits::DEFAULT_DSE_TOP_K)?;
    if !(1..=limits::MAX_DSE_TOP_K).contains(&top_k) {
        return Err(format!(
            "--top-k must be between 1 and {}",
            limits::MAX_DSE_TOP_K
        ));
    }
    let stream: bool = get(flags, "stream", false)?;
    Ok(Some((objective, top_k, stream)))
}

/// The live-progress printer for `clb dse --stream true`: one stderr line
/// per frontier improvement, mirroring the fields of the service's chunked
/// snapshots (stderr so `--json true` output stays machine-parsable).
fn print_stream_progress<R: clb::core::SweepCost>(p: &clb::core::StagedProgress<'_, R>) {
    eprintln!(
        "processed={} pruned={} kept={}",
        p.processed,
        p.pruned,
        p.frontier.len()
    );
}

/// `clb dse`: sweep a grid of candidate architectures over one layer, or —
/// with `--net` — over a full model (the CLI mirror of `POST /v1/dse` in
/// both its modes). The grid axes are comma-separated lists; unlisted axes
/// stay at the base architecture (`--arch` JSON, default Table I
/// implementation 1). `--json true` prints the identical structure the
/// service returns. `--objective`, `--top-k` and `--stream` select the
/// staged engine (the CLI mirror of the same fields on `POST /v1/dse`).
fn cmd_dse(flags: &HashMap<String, String>) -> Result<(), String> {
    if flags.contains_key("net") || flags.contains_key("net-json") {
        for conflicting in ["co", "size", "ci", "k", "stride"] {
            if flags.contains_key(conflicting) {
                return Err(format!(
                    "specify either a network (--net/--net-json) or the layer \
                     flag --{conflicting}, not both"
                ));
            }
        }
        let (net, batch) = match net_from_flags(flags)? {
            Some(custom) => custom,
            None => {
                let batch: usize = get(flags, "batch", 3)?;
                let name = flags.get("net").expect("checked above");
                let net = clb_service::network_by_name(name, batch).map_err(api_error_message)?;
                (net, batch)
            }
        };
        return cmd_dse_network(&net, batch, flags);
    }
    let layer = layer_from_flags(flags)?;
    let base = arch_from_flags(flags)?.unwrap_or_else(accel_sim::ArchConfig::example);

    if let Some((objective, top_k, stream)) = staged_flags(flags)? {
        let archs = grid_archs_from_flags(flags, &base, true)?;
        let response =
            clb_service::dse_staged_results(&layer, archs.len(), &archs, objective, top_k, |p| {
                if stream {
                    print_stream_progress(&p);
                }
            });
        if get(flags, "json", false)? {
            println!(
                "{}",
                serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
            );
            return Ok(());
        }
        println!(
            "layer: {layer} — {} candidates ({} distinct, {} pruned, {} evaluated); \
             top {} by {}\n",
            response.submitted,
            response.unique,
            response.pruned,
            response.evaluated,
            response.kept,
            response.objective
        );
        print_dse_header();
        for entry in &response.results {
            print_dse_row(
                &entry.arch,
                entry.report.as_ref().map(|report| {
                    (
                        report.stats.total_cycles(),
                        report.stats.dram.total_bytes() as f64 / 1e6,
                        report.pj_per_mac(),
                        report.stats.seconds(entry.arch.core_freq_hz) * 1e3,
                    )
                }),
                entry.error.as_deref(),
            );
        }
        return Ok(());
    }

    let archs = grid_archs_from_flags(flags, &base, false)?;
    let response = clb_service::dse_results(&layer, archs.len(), &archs);

    if get(flags, "json", false)? {
        println!(
            "{}",
            serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "layer: {layer} — {} candidates ({} distinct, {} feasible)\n",
        response.submitted, response.unique, response.feasible
    );
    print_dse_header();
    for entry in &response.results {
        print_dse_row(
            &entry.arch,
            entry.report.as_ref().map(|report| {
                (
                    report.stats.total_cycles(),
                    report.stats.dram.total_bytes() as f64 / 1e6,
                    report.pj_per_mac(),
                    report.stats.seconds(entry.arch.core_freq_hz) * 1e3,
                )
            }),
            entry.error.as_deref(),
        );
    }
    Ok(())
}

/// The `clb dse` results-table header — shared between layer and network
/// modes so the two output formats cannot drift.
fn print_dse_header() {
    println!(
        "{:<10} {:>8} {:>12} {:>12} {:>10} {:>9}",
        "PEs", "eff KiB", "cycles", "DRAM (MB)", "pJ/MAC", "time(ms)"
    );
}

/// One `clb dse` results-table row: `(cycles, DRAM MB, pJ/MAC, ms)` for a
/// feasible candidate, the diagnosis otherwise.
fn print_dse_row(
    arch: &accel_sim::ArchConfig,
    stats: Option<(u64, f64, f64, f64)>,
    error: Option<&str>,
) {
    let pes = format!("{}x{}", arch.pe_rows, arch.pe_cols);
    let eff = arch.effective_onchip_bytes() as f64 / 1024.0;
    match stats {
        Some((cycles, dram_mb, pj_per_mac, ms)) => println!(
            "{pes:<10} {eff:>8.1} {cycles:>12} {dram_mb:>12.2} {pj_per_mac:>10.2} {ms:>9.2}"
        ),
        None => println!(
            "{pes:<10} {eff:>8.1} infeasible: {}",
            error.unwrap_or("unknown")
        ),
    }
}

/// Expands the `clb dse` grid flags into validated candidates. Axis order
/// is `api::GRID_AXES`; the expansion itself is shared with the service
/// (`api::archs_from_axes`), so `clb dse` and `/v1/dse` can never disagree
/// on which field an axis sweeps. Staged sweeps get the service's larger
/// staged candidate budget, exactly like a staged `/v1/dse` request.
fn grid_archs_from_flags(
    flags: &HashMap<String, String>,
    base: &accel_sim::ArchConfig,
    staged: bool,
) -> Result<Vec<accel_sim::ArchConfig>, String> {
    let axes: [Vec<usize>; 9] = [
        get_list(flags, "pe-rows", base.pe_rows)?,
        get_list(flags, "pe-cols", base.pe_cols)?,
        get_list(flags, "group-rows", base.group_rows)?,
        get_list(flags, "group-cols", base.group_cols)?,
        get_list(flags, "lreg", base.lreg_entries_per_pe)?,
        get_list(flags, "igbuf", base.igbuf_entries)?,
        get_list(flags, "wgbuf", base.wgbuf_entries)?,
        get_list(flags, "greg-bytes", base.greg_bytes)?,
        get_list(flags, "greg-segment", base.greg_segment_entries)?,
    ];
    if staged {
        clb_service::api::archs_from_axes_staged(&axes, base).map_err(api_error_message)
    } else {
        clb_service::api::archs_from_axes(&axes, base).map_err(api_error_message)
    }
}

/// The network mode of `clb dse` (`--net <preset>` or `--net-json`): the
/// same candidate grid, evaluated per candidate over the *whole model* —
/// the CLI mirror of `/v1/dse` with `"target": {"network": ...}`.
fn cmd_dse_network(
    net: &workloads::Network,
    batch: usize,
    flags: &HashMap<String, String>,
) -> Result<(), String> {
    let base = arch_from_flags(flags)?.unwrap_or_else(accel_sim::ArchConfig::example);

    if let Some((objective, top_k, stream)) = staged_flags(flags)? {
        let archs = grid_archs_from_flags(flags, &base, true)?;
        let response = clb_service::dse_staged_network_results(
            &net,
            batch,
            archs.len(),
            &archs,
            objective,
            top_k,
            |p| {
                if stream {
                    print_stream_progress(&p);
                }
            },
        );
        if get(flags, "json", false)? {
            println!(
                "{}",
                serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
            );
            return Ok(());
        }
        println!(
            "{} (batch {batch}) — {} candidates ({} distinct, {} pruned, {} evaluated); \
             top {} by {}\n",
            response.network,
            response.submitted,
            response.unique,
            response.pruned,
            response.evaluated,
            response.kept,
            response.objective
        );
        print_dse_header();
        for entry in &response.results {
            print_dse_row(
                &entry.arch,
                entry.report.as_ref().map(|report| {
                    (
                        report.totals.total_cycles(),
                        report.totals.dram.total_bytes() as f64 / 1e6,
                        report.pj_per_mac(),
                        report.seconds * 1e3,
                    )
                }),
                entry.error.as_deref(),
            );
        }
        return Ok(());
    }

    let archs = grid_archs_from_flags(flags, &base, false)?;
    let response = clb_service::dse_network_results(&net, batch, archs.len(), &archs);

    if get(flags, "json", false)? {
        println!(
            "{}",
            serde_json::to_string_pretty(&response).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "{} (batch {batch}) — {} candidates ({} distinct, {} feasible)\n",
        response.network, response.submitted, response.unique, response.feasible
    );
    print_dse_header();
    for entry in &response.results {
        print_dse_row(
            &entry.arch,
            entry.report.as_ref().map(|report| {
                (
                    report.totals.total_cycles(),
                    report.totals.dram.total_bytes() as f64 / 1e6,
                    report.pj_per_mac(),
                    report.seconds * 1e3,
                )
            }),
            entry.error.as_deref(),
        );
    }
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut config = clb_service::ServiceConfig {
        port: get(flags, "port", 8080)?,
        threads: get(flags, "threads", 0)?,
        ..Default::default()
    };
    config.io_workers = get(flags, "io-workers", config.io_workers)?;
    config.queue_capacity = get(flags, "queue", config.queue_capacity)?;
    config.result_cache_capacity = get(flags, "result-cache", config.result_cache_capacity)?;
    config.max_body_bytes = get(flags, "max-body", config.max_body_bytes)?;
    config.max_requests_per_connection = get(
        flags,
        "keepalive-requests",
        config.max_requests_per_connection,
    )?;
    config.idle_timeout = std::time::Duration::from_millis(get(
        flags,
        "keepalive-idle-ms",
        config.idle_timeout.as_millis() as u64,
    )?);
    config.max_connections = get(flags, "max-connections", config.max_connections)?;
    config.drain_deadline = std::time::Duration::from_millis(get(
        flags,
        "drain-ms",
        config.drain_deadline.as_millis() as u64,
    )?);
    config.allow_shutdown = get(flags, "allow-shutdown", config.allow_shutdown)?;
    if get(flags, "log", false)? {
        config.log = Some(std::sync::Arc::new(|line: &str| eprintln!("{line}")));
    }
    let search_cache: usize = get(
        flags,
        "search-cache",
        dataflow::DEFAULT_SEARCH_CACHE_CAPACITY,
    )?;
    dataflow::set_search_cache_capacity(search_cache);
    let server = clb_service::Server::bind(config).map_err(|e| e.to_string())?;
    eprintln!(
        "clb-service listening on http://{} (try GET /healthz)",
        server.local_addr().map_err(|e| e.to_string())?
    );
    server.run().map_err(|e| e.to_string())
}

fn usage() -> &'static str {
    "usage: clb <bound|sweep|plan|simulate|network|dse|serve> [--flag value]...\n\
     \n\
     clb bound    --co 512 --size 28 --ci 256 [--k 3] [--stride 1] [--batch 3] [--mem-kib 66.5]\n\
     clb sweep    --co 512 --size 28 --ci 256 [--mem-kib 66.5]\n\
     clb plan     --co 512 --size 28 --ci 256 [--implem 1]\n\
     clb simulate --co 512 --size 28 --ci 256 --tb 1 --tz 16 --ty 14 --tx 14 [--implem 1]\n\
     \\            [--trace json|vcd] [--trace-out FILE]   # execution trace (VCD: GTKWave)\n\
     clb network  --net vgg16|alexnet|resnet50|inception|fc [--batch 3] [--implem 1]\n\
     \\            [--json true]   (or --net-json '<json>': a custom network object)\n\
     clb dse      --co 512 --size 28 --ci 256 [--pe-rows 16,24,32] [--pe-cols ...]\n\
     \\            [--group-rows ...] [--group-cols ...] [--lreg 64,128] [--igbuf ...]\n\
     \\            [--wgbuf ...] [--greg-bytes ...] [--greg-segment ...] [--json true]\n\
     \\            [--objective cycles|traffic|energy|pareto] [--top-k 16] [--stream true]\n\
     \\            (any staged flag switches to the bound-pruned engine: 2^20\n\
     \\            candidate cap, ranked top-k frontier, live progress on stderr)\n\
     clb dse      --net vgg16|alexnet|resnet50|inception|fc [--batch 3]\n\
     \\            [--pe-rows 16,24,32] ...   (or --net-json '<json>')\n\
     \\            (network mode: each candidate evaluated over the whole model;\n\
     \\            takes the same staged flags)\n\
     clb serve    [--port 8080] [--threads 0] [--io-workers 0] [--queue 256]\n\
     \\            [--result-cache 1024] [--search-cache 65536] [--max-body 1048576]\n\
     \\            [--keepalive-requests 128] [--keepalive-idle-ms 5000]\n\
     \\            [--max-connections 1024] [--drain-ms 5000] [--allow-shutdown true]\n\
     \\            [--log true]   (--io-workers: HTTP I/O worker threads; 0 = auto)\n\
     \n\
     global flags:\n\
     --threads N        worker threads (search engine; serve: compute permits; 0 = auto)\n\
     --cache-stats true print search-cache hits/misses after the command\n\
     --arch '<json>'    full custom architecture (any verb that takes --implem;\n\
     \\                  bound/sweep derive the memory size from it; dse uses it\n\
     \\                  as the grid base) — fields default to implementation 1,\n\
     \\                  e.g. '{\"pe_rows\":24,\"pe_cols\":24,\"igbuf_entries\":3072}'\n\
     --net-json '<json>' full custom network (network/dse): {\"name\",\"batch\",\n\
     \\                  \"layers\":[{\"co\",\"ci\",\"size\",...}]} — the CLI mirror of\n\
     \\                  posting a network object; carries its own batch"
}

/// Applies the global engine flags (`--threads`, `--cache-stats`); returns
/// whether cache statistics were requested.
fn apply_engine_flags(flags: &HashMap<String, String>) -> Result<bool, String> {
    let threads: usize = get(flags, "threads", 0)?;
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .map_err(|e| format!("--threads: {e}"))?;
    get(flags, "cache-stats", false)
}

fn print_cache_stats() {
    let stats = dataflow::cache_stats();
    eprintln!(
        "search cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = parse_flags(rest).and_then(|flags| {
        let cache_stats = apply_engine_flags(&flags)?;
        let outcome = match cmd.as_str() {
            "bound" => cmd_bound(&flags),
            "sweep" => cmd_sweep(&flags),
            "plan" => cmd_plan(&flags),
            "simulate" => cmd_simulate(&flags),
            "network" => cmd_network(&flags),
            "dse" => cmd_dse(&flags),
            "serve" => cmd_serve(&flags),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        };
        if cache_stats {
            print_cache_stats();
        }
        outcome
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_roundtrip() {
        let args: Vec<String> = ["--co", "64", "--size", "28"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed.get("co").unwrap(), "64");
        assert_eq!(parsed.get("size").unwrap(), "28");
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let args: Vec<String> = ["co", "64"].iter().map(ToString::to_string).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args: Vec<String> = ["--co"].iter().map(ToString::to_string).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn get_uses_default_and_parses() {
        let f = flags(&[("co", "64")]);
        assert_eq!(get::<usize>(&f, "co", 1).unwrap(), 64);
        assert_eq!(get::<usize>(&f, "size", 7).unwrap(), 7);
        let bad = flags(&[("co", "abc")]);
        assert!(get::<usize>(&bad, "co", 1).is_err());
    }

    #[test]
    fn parse_errors_name_the_offending_flag() {
        // Scalar parse failures carry the `--flag` spelling the user typed.
        let err = get::<u16>(&flags(&[("port", "eighty")]), "port", 8080).unwrap_err();
        assert!(err.contains("--port"), "{err}");
        let err = get::<usize>(&flags(&[("threads", "lots")]), "threads", 0).unwrap_err();
        assert!(err.contains("--threads"), "{err}");
        let err = get::<usize>(&flags(&[("io-workers", "-1")]), "io-workers", 0).unwrap_err();
        assert!(err.contains("--io-workers"), "{err}");
        // Layer validation failures name the layer flags, not just the cause.
        let zero_k = flags(&[("co", "16"), ("size", "14"), ("ci", "8"), ("k", "0")]);
        let err = layer_from_flags(&zero_k).unwrap_err();
        assert!(err.contains("--k"), "{err}");
    }

    #[test]
    fn json_flag_is_a_parsed_bool_not_a_presence_check() {
        assert!(!get::<bool>(&flags(&[("json", "false")]), "json", false).unwrap());
        assert!(get::<bool>(&flags(&[("json", "true")]), "json", false).unwrap());
        let err = get::<bool>(&flags(&[("json", "yes")]), "json", false).unwrap_err();
        assert!(err.contains("--json"), "{err}");
        // `--json false` must take the human-readable path, and garbage must
        // surface the flag name instead of silently enabling JSON.
        let base = [("net", "alexnet"), ("batch", "1")];
        cmd_network(&flags(&[&base[..], &[("json", "false")]].concat())).unwrap();
        let err = cmd_network(&flags(&[&base[..], &[("json", "maybe")]].concat())).unwrap_err();
        assert!(err.contains("--json"), "{err}");
    }

    #[test]
    fn layer_requires_core_dimensions() {
        assert!(layer_from_flags(&flags(&[("co", "64")])).is_err());
        let ok = layer_from_flags(&flags(&[("co", "64"), ("size", "28"), ("ci", "32")]));
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().out_channels(), 64);
    }

    #[test]
    fn commands_run_on_valid_input() {
        let f = flags(&[("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")]);
        cmd_bound(&f).unwrap();
        cmd_sweep(&f).unwrap();
        cmd_plan(&f).unwrap();
    }

    #[test]
    fn simulate_runs_explicit_tilings_and_rejects_bad_ones() {
        let base = [("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")];
        let ok = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "8"), ("ty", "7"), ("tx", "7")],
            ]
            .concat(),
        );
        cmd_simulate(&ok).unwrap();
        // Missing tiling flags.
        let missing = flags(&base);
        assert!(cmd_simulate(&missing).unwrap_err().contains("--tb"));
        // Zero dimension.
        let zero = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "0"), ("ty", "7"), ("tx", "7")],
            ]
            .concat(),
        );
        assert!(cmd_simulate(&zero).is_err());
        // Oversized dimension.
        let oversized = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "8"), ("ty", "99"), ("tx", "7")],
            ]
            .concat(),
        );
        assert!(cmd_simulate(&oversized).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn simulate_traces_to_files_and_rejects_unknown_formats() {
        let base = [("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")];
        let tiling = [("tb", "1"), ("tz", "8"), ("ty", "7"), ("tx", "7")];
        let dir = std::env::temp_dir().join(format!("clb-trace-test-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let vcd_path = dir.join("trace.vcd");
        let vcd_flags = flags(
            &[
                &base[..],
                &tiling[..],
                &[("trace", "vcd"), ("trace-out", vcd_path.to_str().unwrap())],
            ]
            .concat(),
        );
        cmd_simulate(&vcd_flags).unwrap();
        let vcd = std::fs::read_to_string(&vcd_path).unwrap();
        assert!(vcd.contains("$enddefinitions $end"), "VCD header missing");
        assert!(vcd.lines().any(|l| l.starts_with('#')), "no VCD changes");
        // JSON trace to a file parses and carries the pinned totals.
        let json_path = dir.join("trace.json");
        let json_flags = flags(
            &[
                &base[..],
                &tiling[..],
                &[
                    ("trace", "json"),
                    ("trace-out", json_path.to_str().unwrap()),
                ],
            ]
            .concat(),
        );
        cmd_simulate(&json_flags).unwrap();
        let parsed: serde_json::Value =
            serde_json::from_str(&std::fs::read_to_string(&json_path).unwrap()).unwrap();
        assert!(parsed.get_field("totals").is_ok());
        std::fs::remove_dir_all(&dir).unwrap();
        // Unknown formats are refused.
        let bad = flags(&[&base[..], &tiling[..], &[("trace", "svg")]].concat());
        assert!(cmd_simulate(&bad).unwrap_err().contains("json|vcd"));
    }

    #[test]
    fn network_rejects_unknown_name() {
        let f = flags(&[("net", "lenet")]);
        let err = cmd_network(&f).unwrap_err();
        // The refusal carries the full service vocabulary — CLI and
        // endpoint must never drift apart again.
        for name in ["vgg16", "alexnet", "resnet50", "inception", "fc"] {
            assert!(err.contains(name), "{err}");
        }
    }

    #[test]
    fn net_json_parses_a_custom_network_through_the_service_caps() {
        const TINY: &str = "{\"name\":\"tiny\",\"batch\":1,\
             \"layers\":[{\"co\":8,\"ci\":3,\"size\":14}]}";
        let (net, batch) = net_from_flags(&flags(&[("net-json", TINY)]))
            .unwrap()
            .unwrap();
        assert_eq!(net.name(), "tiny");
        assert_eq!(batch, 1);
        assert_eq!(net.len(), 1);
        // Absent flag: the preset path.
        assert!(net_from_flags(&flags(&[])).unwrap().is_none());
        // Conflicts: --net and --batch both clash with the object's own fields.
        let err = net_from_flags(&flags(&[("net-json", TINY), ("net", "vgg16")])).unwrap_err();
        assert!(err.contains("--net-json"), "{err}");
        let err = net_from_flags(&flags(&[("net-json", TINY), ("batch", "2")])).unwrap_err();
        assert!(err.contains("--batch"), "{err}");
        // Structural and cap failures surface the service's message under
        // the flag's name.
        let err = net_from_flags(&flags(&[("net-json", "{nope")])).unwrap_err();
        assert!(err.contains("--net-json") && err.contains("invalid JSON"), "{err}");
        let err =
            net_from_flags(&flags(&[("net-json", "{\"batch\":1,\"layers\":[]}")])).unwrap_err();
        assert!(err.contains("at least one layer"), "{err}");
        // The whole verb paths accept it end to end.
        cmd_network(&flags(&[("net-json", TINY)])).unwrap();
        cmd_dse(&flags(&[("net-json", TINY), ("pe-rows", "16")])).unwrap();
        // Layer flags conflict with --net-json exactly as with --net.
        let err = cmd_dse(&flags(&[("net-json", TINY), ("co", "16")])).unwrap_err();
        assert!(err.contains("either"), "{err}");
    }

    #[test]
    fn arch_flag_parses_validates_and_conflicts() {
        // Valid custom architecture with defaults filled in.
        let f = flags(&[("arch", "{\"pe_rows\":24,\"pe_cols\":24}")]);
        let arch = arch_from_flags(&f).unwrap().unwrap();
        assert_eq!((arch.pe_rows, arch.pe_cols), (24, 24));
        assert_eq!(arch.wgbuf_entries, 256, "unset fields default to impl 1");
        // Invalid JSON and violated invariants are reported.
        assert!(arch_from_flags(&flags(&[("arch", "{nope")]))
            .unwrap_err()
            .contains("invalid JSON"));
        assert!(arch_from_flags(&flags(&[("arch", "{\"pe_rows\":0}")]))
            .unwrap_err()
            .contains("non-empty"));
        // --arch and --implem are mutually exclusive.
        let both = flags(&[("arch", "{}"), ("implem", "2")]);
        assert!(arch_from_flags(&both).unwrap_err().contains("either"));
        // No flag at all means "use --implem".
        assert!(arch_from_flags(&flags(&[])).unwrap().is_none());
    }

    #[test]
    fn verbs_accept_custom_architectures() {
        let base = [
            ("co", "16"),
            ("size", "14"),
            ("ci", "8"),
            ("batch", "1"),
            (
                "arch",
                "{\"pe_rows\":8,\"pe_cols\":8,\"group_rows\":2,\"group_cols\":2}",
            ),
        ];
        cmd_bound(&flags(&base)).unwrap();
        cmd_sweep(&flags(&base)).unwrap();
        cmd_plan(&flags(&base)).unwrap();
        let sim = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "8"), ("ty", "7"), ("tx", "7")],
            ]
            .concat(),
        );
        cmd_simulate(&sim).unwrap();
        // --arch conflicts with --mem-kib on the memory-driven verbs.
        let conflict = flags(&[&base[..], &[("mem-kib", "66.5")]].concat());
        assert!(cmd_bound(&conflict).unwrap_err().contains("either"));
    }

    #[test]
    fn dse_sweeps_a_grid_and_rejects_bad_ones() {
        let base = [("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")];
        let ok = flags(&[&base[..], &[("pe-rows", "16,32"), ("lreg", "64,128")]].concat());
        cmd_dse(&ok).unwrap();
        // Malformed list values.
        let bad = flags(&[&base[..], &[("pe-rows", "16,abc")]].concat());
        assert!(cmd_dse(&bad).unwrap_err().contains("invalid value"));
        // A grid whose candidate violates an invariant names it.
        let invalid = flags(&[&base[..], &[("pe-rows", "18")]].concat());
        assert!(cmd_dse(&invalid).unwrap_err().contains("must divide"));
        // Over-cap grids are refused before evaluation.
        let over = flags(
            &[
                &base[..],
                &[
                    ("pe-rows", "4,8,12,16,20,24,28,32"),
                    ("pe-cols", "4,8,12,16,20,24,28,32"),
                    ("lreg", "16,32,64,128,256"),
                ],
            ]
            .concat(),
        );
        assert!(cmd_dse(&over).unwrap_err().contains("cap"));
    }

    #[test]
    fn dse_staged_flags_select_and_validate_the_staged_engine() {
        let base = [("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")];
        // Any staged flag runs the staged engine end to end.
        let ranked = flags(
            &[
                &base[..],
                &[
                    ("pe-rows", "16,32"),
                    ("lreg", "64,128"),
                    ("objective", "energy"),
                    ("top-k", "2"),
                ],
            ]
            .concat(),
        );
        cmd_dse(&ranked).unwrap();
        // --stream alone is enough to go staged, and prints progress.
        let streamed = flags(&[&base[..], &[("pe-rows", "16,32"), ("stream", "true")]].concat());
        cmd_dse(&streamed).unwrap();
        // Hostile staged values are refused with the vocabulary.
        let bad_objective = flags(&[&base[..], &[("objective", "latency")]].concat());
        assert!(cmd_dse(&bad_objective)
            .unwrap_err()
            .contains("cycles, traffic, energy or pareto"));
        let bad_top_k = flags(&[&base[..], &[("objective", "cycles"), ("top-k", "0")]].concat());
        assert!(cmd_dse(&bad_top_k).unwrap_err().contains("--top-k"));
        let bad_stream = flags(&[&base[..], &[("stream", "yes")]].concat());
        assert!(cmd_dse(&bad_stream).is_err());
        // A grid over the legacy 256 cap is fine under the staged budget.
        let wide = flags(
            &[
                &base[..],
                &[
                    ("pe-rows", "4,8,12,16,20,24,28,32"),
                    ("pe-cols", "4,8,12,16,20,24,28,32"),
                    ("lreg", "16,32,64,128,256"),
                    ("objective", "cycles"),
                    ("top-k", "1"),
                ],
            ]
            .concat(),
        );
        cmd_dse(&wide).unwrap();
        // Network mode takes the same staged flags.
        let net = flags(&[
            ("net", "alexnet"),
            ("batch", "1"),
            ("pe-rows", "16,32"),
            ("objective", "pareto"),
            ("top-k", "2"),
        ]);
        cmd_dse(&net).unwrap();
    }

    #[test]
    fn dse_network_mode_sweeps_a_model_and_validates_flags() {
        // resnet_bottleneck is not exposed over the name vocabulary, so the
        // cheapest real model is alexnet at batch 1.
        let ok = flags(&[("net", "alexnet"), ("batch", "1"), ("pe-rows", "16,32")]);
        cmd_dse(&ok).unwrap();
        // Unknown model names are refused with the endpoint's vocabulary.
        let bad = flags(&[("net", "lenet")]);
        assert!(cmd_dse(&bad).unwrap_err().contains("vgg16"));
        // Layer flags conflict with --net.
        let mixed = flags(&[("net", "alexnet"), ("co", "16")]);
        assert!(cmd_dse(&mixed).unwrap_err().contains("either"));
        // Out-of-limit batches are refused.
        let over = flags(&[("net", "alexnet"), ("batch", "9999")]);
        assert!(cmd_dse(&over).unwrap_err().contains("batch"));
    }

    #[test]
    fn engine_flags_parse_and_apply() {
        assert!(!apply_engine_flags(&flags(&[])).unwrap());
        assert!(apply_engine_flags(&flags(&[("cache-stats", "true")])).unwrap());
        assert!(!apply_engine_flags(&flags(&[("cache-stats", "false")])).unwrap());
        assert!(apply_engine_flags(&flags(&[("cache-stats", "yes")])).is_err());
        assert!(apply_engine_flags(&flags(&[("threads", "2")])).is_ok());
        assert!(apply_engine_flags(&flags(&[("threads", "x")])).is_err());
        // Leave the global thread count on auto for the other tests.
        apply_engine_flags(&flags(&[("threads", "0")])).unwrap();
        print_cache_stats();
    }
}
