//! `clb` — command-line interface to the library.
//!
//! ```text
//! clb bound    --co 512 --size 28 --ci 256 [--k 3] [--stride 1] [--batch 3] [--mem-kib 66.5]
//! clb sweep    --co 512 --size 28 --ci 256 ...           # all dataflows at one memory size
//! clb plan     --co 512 --size 28 --ci 256 [--implem 1]  # tiling + simulation on an implementation
//! clb simulate --co 512 --size 28 --ci 256 --tb 1 --tz 16 --ty 14 --tx 14 [--implem 1]
//! clb network  --net vgg16|alexnet|resnet50 [--batch 3] [--implem 1] [--json]
//! clb serve    [--port 8080] [--threads 0] [--queue 256] [--result-cache 1024]
//! ```

use std::collections::HashMap;
use std::process::ExitCode;

use clb::core::Accelerator;
use clb::model::workloads;
use clb::prelude::*;
use dataflow::{found_minimum, search_dataflow};

fn parse_flags(args: &[String]) -> Result<HashMap<String, String>, String> {
    let mut flags = HashMap::new();
    let mut i = 0;
    while i < args.len() {
        let key = args[i]
            .strip_prefix("--")
            .ok_or_else(|| format!("expected --flag, got `{}`", args[i]))?;
        let value = args
            .get(i + 1)
            .ok_or_else(|| format!("flag --{key} needs a value"))?;
        flags.insert(key.to_string(), value.clone());
        i += 2;
    }
    Ok(flags)
}

fn get<T: std::str::FromStr>(
    flags: &HashMap<String, String>,
    key: &str,
    default: T,
) -> Result<T, String> {
    match flags.get(key) {
        None => Ok(default),
        Some(v) => v
            .parse()
            .map_err(|_| format!("invalid value `{v}` for --{key}")),
    }
}

fn layer_from_flags(flags: &HashMap<String, String>) -> Result<ConvLayer, String> {
    let co: usize = get(flags, "co", 0)?;
    let size: usize = get(flags, "size", 0)?;
    let ci: usize = get(flags, "ci", 0)?;
    if co == 0 || size == 0 || ci == 0 {
        return Err("--co, --size and --ci are required".into());
    }
    let k: usize = get(flags, "k", 3)?;
    let stride: usize = get(flags, "stride", 1)?;
    let batch: usize = get(flags, "batch", 3)?;
    ConvLayer::square(batch, co, size, ci, k, stride).map_err(|e| e.to_string())
}

fn cmd_bound(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let mem = OnChipMemory::from_kib(get(flags, "mem-kib", 66.5)?);
    println!("layer: {layer} (R = {})", layer.window_reuse());
    println!("MACs:  {:.3} G", layer.macs() as f64 / 1e9);
    println!("effective on-chip memory: {mem}");
    println!(
        "Theorem 2 (asymptotic): {:.2} MB",
        clb::bound::theorem2_dram_words(&layer, mem) * 2.0 / 1e6
    );
    println!(
        "Eq. 15 practical bound: {:.2} MB",
        clb::bound::dram_bound_bytes(&layer, mem) / 1e6
    );
    println!(
        "naive (no reuse):       {:.2} MB",
        clb::bound::naive_dram_words(&layer) * 2.0 / 1e6
    );
    println!(
        "reduction factor sqrt(R*S) = {:.1}",
        clb::bound::reduction_factor(&layer, mem)
    );
    Ok(())
}

fn cmd_sweep(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let mem = OnChipMemory::from_kib(get(flags, "mem-kib", 66.5)?);
    println!("layer: {layer}, memory {mem}\n");
    println!("{:<16} {:>10} {:>12}", "dataflow", "DRAM (MB)", "vs bound");
    let bound = clb::bound::dram_bound_bytes(&layer, mem);
    println!(
        "{:<16} {:>10.2} {:>12}",
        "lower bound",
        bound / 1e6,
        "1.00x"
    );
    let min = found_minimum(&layer, mem);
    println!(
        "{:<16} {:>10.2} {:>11.2}x",
        "found minimum",
        min.traffic.total_bytes() as f64 / 1e6,
        min.traffic.total_bytes() as f64 / bound
    );
    for kind in DataflowKind::ALL {
        match search_dataflow(kind, &layer, mem) {
            Some(c) => println!(
                "{:<16} {:>10.2} {:>11.2}x",
                kind.name(),
                c.traffic.total_bytes() as f64 / 1e6,
                c.traffic.total_bytes() as f64 / bound
            ),
            None => println!("{:<16} {:>10} {:>12}", kind.name(), "-", "infeasible"),
        }
    }
    Ok(())
}

fn cmd_plan(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let implem: usize = get(flags, "implem", 1)?;
    if !(1..=5).contains(&implem) {
        return Err("--implem must be 1..=5".into());
    }
    let acc = Accelerator::implementation(implem);
    let report = acc
        .analyze_layer("layer", &layer)
        .map_err(|e| e.to_string())?;
    println!("layer: {layer}");
    println!("implementation {implem}: {} PEs", acc.arch().pe_count());
    println!("tiling: {}", report.tiling);
    println!(
        "DRAM:  {:.2} MB ({:+.1}% vs bound)",
        report.stats.dram.total_bytes() as f64 / 1e6,
        (report.dram_vs_bound() - 1.0) * 100.0
    );
    println!(
        "GBuf:  {:.2} MB   Regs: {:.3} G writes",
        report.stats.gbuf.total_bytes() as f64 / 1e6,
        report.stats.reg.total_writes() as f64 / 1e9
    );
    println!(
        "time:  {:.2} ms   energy: {:.2} pJ/MAC   PE util: {:.1}%",
        report.stats.seconds(acc.arch().core_freq_hz) * 1e3,
        report.pj_per_mac(),
        report.stats.utilization.pe * 100.0
    );
    Ok(())
}

/// `clb simulate`: run the cycle simulator on an explicit, user-supplied
/// tiling instead of the planner's choice (the CLI mirror of
/// `POST /v1/simulate`).
fn cmd_simulate(flags: &HashMap<String, String>) -> Result<(), String> {
    let layer = layer_from_flags(flags)?;
    let implem: usize = get(flags, "implem", 1)?;
    if !(1..=5).contains(&implem) {
        return Err("--implem must be 1..=5".into());
    }
    let tiling = dataflow::Tiling {
        b: get(flags, "tb", 0)?,
        z: get(flags, "tz", 0)?,
        y: get(flags, "ty", 0)?,
        x: get(flags, "tx", 0)?,
    };
    // Missing flags default to 0 so one message covers both absence and an
    // explicit zero; oversized dims are diagnosed by `simulate` itself.
    if tiling.b == 0 || tiling.z == 0 || tiling.y == 0 || tiling.x == 0 {
        return Err("--tb, --tz, --ty and --tx are required (nonzero)".into());
    }
    let arch = accel_sim::ArchConfig::implementation(implem);
    let stats = accel_sim::simulate(&layer, &tiling, &arch).map_err(|e| e.to_string())?;
    println!("layer: {layer}");
    println!("implementation {implem}: {} PEs", arch.pe_count());
    println!("tiling: {tiling} ({} blocks)", stats.blocks);
    println!(
        "DRAM:  {:.2} MB   GBuf: {:.2} MB   Regs: {:.3} G writes",
        stats.dram.total_bytes() as f64 / 1e6,
        stats.gbuf.total_bytes() as f64 / 1e6,
        stats.reg.total_writes() as f64 / 1e9
    );
    println!(
        "cycles: {} compute + {} stall = {}",
        stats.compute_cycles,
        stats.stall_cycles,
        stats.total_cycles()
    );
    println!(
        "time:  {:.2} ms   PE util: {:.1}%   memory util: {:.1}%",
        stats.seconds(arch.core_freq_hz) * 1e3,
        stats.utilization.pe * 100.0,
        stats.utilization.memory_overall * 100.0
    );
    Ok(())
}

fn cmd_network(flags: &HashMap<String, String>) -> Result<(), String> {
    let batch: usize = get(flags, "batch", 3)?;
    let name = flags
        .get("net")
        .cloned()
        .unwrap_or_else(|| "vgg16".to_string());
    let net = match name.as_str() {
        "vgg16" => workloads::vgg16(batch),
        "alexnet" => workloads::alexnet(batch),
        "resnet50" => workloads::resnet50(batch),
        other => {
            return Err(format!(
                "unknown network `{other}` (vgg16|alexnet|resnet50)"
            ))
        }
    };
    let implem: usize = get(flags, "implem", 1)?;
    let acc = Accelerator::implementation(implem);
    let report = acc.analyze_network(&net).map_err(|e| e.to_string())?;

    if flags.contains_key("json") || flags.get("json").is_some() {
        println!(
            "{}",
            serde_json::to_string_pretty(&report).map_err(|e| e.to_string())?
        );
        return Ok(());
    }

    println!(
        "{} (batch {batch}) on implementation {implem}: {:.1} GMACs",
        net.name(),
        net.total_macs() as f64 / 1e9
    );
    println!(
        "{:<12} {:>10} {:>10} {:>9}",
        "layer", "DRAM(MB)", "pJ/MAC", "PE util"
    );
    for l in &report.layers {
        println!(
            "{:<12} {:>10.1} {:>10.2} {:>8.1}%",
            l.name,
            l.stats.dram.total_bytes() as f64 / 1e6,
            l.pj_per_mac(),
            l.stats.utilization.pe * 100.0
        );
    }
    println!(
        "\ntotal: {:.1} MB DRAM, {:.2} pJ/MAC, {:.3} s, {:.2} W",
        report.totals.dram.total_bytes() as f64 / 1e6,
        report.pj_per_mac(),
        report.seconds,
        report.power_w()
    );
    Ok(())
}

fn cmd_serve(flags: &HashMap<String, String>) -> Result<(), String> {
    let mut config = clb_service::ServiceConfig {
        port: get(flags, "port", 8080)?,
        threads: get(flags, "threads", 0)?,
        ..Default::default()
    };
    config.queue_capacity = get(flags, "queue", config.queue_capacity)?;
    config.result_cache_capacity = get(flags, "result-cache", config.result_cache_capacity)?;
    config.max_body_bytes = get(flags, "max-body", config.max_body_bytes)?;
    let search_cache: usize = get(
        flags,
        "search-cache",
        dataflow::DEFAULT_SEARCH_CACHE_CAPACITY,
    )?;
    dataflow::set_search_cache_capacity(search_cache);
    let server = clb_service::Server::bind(config).map_err(|e| e.to_string())?;
    eprintln!(
        "clb-service listening on http://{} (try GET /healthz)",
        server.local_addr().map_err(|e| e.to_string())?
    );
    server.run().map_err(|e| e.to_string())
}

fn usage() -> &'static str {
    "usage: clb <bound|sweep|plan|simulate|network|serve> [--flag value]...\n\
     \n\
     clb bound    --co 512 --size 28 --ci 256 [--k 3] [--stride 1] [--batch 3] [--mem-kib 66.5]\n\
     clb sweep    --co 512 --size 28 --ci 256 [--mem-kib 66.5]\n\
     clb plan     --co 512 --size 28 --ci 256 [--implem 1]\n\
     clb simulate --co 512 --size 28 --ci 256 --tb 1 --tz 16 --ty 14 --tx 14 [--implem 1]\n\
     clb network  --net vgg16|alexnet|resnet50 [--batch 3] [--implem 1] [--json true]\n\
     clb serve    [--port 8080] [--threads 0] [--queue 256] [--result-cache 1024]\n\
     \\            [--search-cache 65536] [--max-body 1048576]\n\
     \n\
     global flags:\n\
     --threads N        worker threads (search engine; serve: also HTTP workers; 0 = auto)\n\
     --cache-stats true print search-cache hits/misses after the command"
}

/// Applies the global engine flags (`--threads`, `--cache-stats`); returns
/// whether cache statistics were requested.
fn apply_engine_flags(flags: &HashMap<String, String>) -> Result<bool, String> {
    let threads: usize = get(flags, "threads", 0)?;
    rayon::ThreadPoolBuilder::new()
        .num_threads(threads)
        .build_global()
        .map_err(|e| e.to_string())?;
    get(flags, "cache-stats", false)
}

fn print_cache_stats() {
    let stats = dataflow::cache_stats();
    eprintln!(
        "search cache: {} hits / {} misses ({:.0}% hit rate, {} entries)",
        stats.hits,
        stats.misses,
        stats.hit_rate() * 100.0,
        stats.entries
    );
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some((cmd, rest)) = args.split_first() else {
        eprintln!("{}", usage());
        return ExitCode::FAILURE;
    };
    let result = parse_flags(rest).and_then(|flags| {
        let cache_stats = apply_engine_flags(&flags)?;
        let outcome = match cmd.as_str() {
            "bound" => cmd_bound(&flags),
            "sweep" => cmd_sweep(&flags),
            "plan" => cmd_plan(&flags),
            "simulate" => cmd_simulate(&flags),
            "network" => cmd_network(&flags),
            "serve" => cmd_serve(&flags),
            other => Err(format!("unknown command `{other}`\n{}", usage())),
        };
        if cache_stats {
            print_cache_stats();
        }
        outcome
    });
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(pairs: &[(&str, &str)]) -> HashMap<String, String> {
        pairs
            .iter()
            .map(|(k, v)| (k.to_string(), v.to_string()))
            .collect()
    }

    #[test]
    fn parse_flags_roundtrip() {
        let args: Vec<String> = ["--co", "64", "--size", "28"]
            .iter()
            .map(ToString::to_string)
            .collect();
        let parsed = parse_flags(&args).unwrap();
        assert_eq!(parsed.get("co").unwrap(), "64");
        assert_eq!(parsed.get("size").unwrap(), "28");
    }

    #[test]
    fn parse_flags_rejects_bare_values() {
        let args: Vec<String> = ["co", "64"].iter().map(ToString::to_string).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn parse_flags_rejects_missing_value() {
        let args: Vec<String> = ["--co"].iter().map(ToString::to_string).collect();
        assert!(parse_flags(&args).is_err());
    }

    #[test]
    fn get_uses_default_and_parses() {
        let f = flags(&[("co", "64")]);
        assert_eq!(get::<usize>(&f, "co", 1).unwrap(), 64);
        assert_eq!(get::<usize>(&f, "size", 7).unwrap(), 7);
        let bad = flags(&[("co", "abc")]);
        assert!(get::<usize>(&bad, "co", 1).is_err());
    }

    #[test]
    fn layer_requires_core_dimensions() {
        assert!(layer_from_flags(&flags(&[("co", "64")])).is_err());
        let ok = layer_from_flags(&flags(&[("co", "64"), ("size", "28"), ("ci", "32")]));
        assert!(ok.is_ok());
        assert_eq!(ok.unwrap().out_channels(), 64);
    }

    #[test]
    fn commands_run_on_valid_input() {
        let f = flags(&[("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")]);
        cmd_bound(&f).unwrap();
        cmd_sweep(&f).unwrap();
        cmd_plan(&f).unwrap();
    }

    #[test]
    fn simulate_runs_explicit_tilings_and_rejects_bad_ones() {
        let base = [("co", "16"), ("size", "14"), ("ci", "8"), ("batch", "1")];
        let ok = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "8"), ("ty", "7"), ("tx", "7")],
            ]
            .concat(),
        );
        cmd_simulate(&ok).unwrap();
        // Missing tiling flags.
        let missing = flags(&base);
        assert!(cmd_simulate(&missing).unwrap_err().contains("--tb"));
        // Zero dimension.
        let zero = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "0"), ("ty", "7"), ("tx", "7")],
            ]
            .concat(),
        );
        assert!(cmd_simulate(&zero).is_err());
        // Oversized dimension.
        let oversized = flags(
            &[
                &base[..],
                &[("tb", "1"), ("tz", "8"), ("ty", "99"), ("tx", "7")],
            ]
            .concat(),
        );
        assert!(cmd_simulate(&oversized).unwrap_err().contains("exceeds"));
    }

    #[test]
    fn network_rejects_unknown_name() {
        let f = flags(&[("net", "lenet")]);
        assert!(cmd_network(&f).is_err());
    }

    #[test]
    fn engine_flags_parse_and_apply() {
        assert!(!apply_engine_flags(&flags(&[])).unwrap());
        assert!(apply_engine_flags(&flags(&[("cache-stats", "true")])).unwrap());
        assert!(!apply_engine_flags(&flags(&[("cache-stats", "false")])).unwrap());
        assert!(apply_engine_flags(&flags(&[("cache-stats", "yes")])).is_err());
        assert!(apply_engine_flags(&flags(&[("threads", "2")])).is_ok());
        assert!(apply_engine_flags(&flags(&[("threads", "x")])).is_err());
        // Leave the global thread count on auto for the other tests.
        apply_engine_flags(&flags(&[("threads", "0")])).unwrap();
        print_cache_stats();
    }
}
