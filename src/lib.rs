//! # clb — Communication Lower Bound in Convolution Accelerators
//!
//! A full Rust reproduction of *"Communication Lower Bound in Convolution
//! Accelerators"* (Chen, Han, Wang — HPCA 2020): the theoretical DRAM
//! communication lower bound for convolutional layers, the
//! communication-optimal dataflow that reaches it, the workload/storage
//! mapping that minimises on-chip traffic, and a cycle-level model of the
//! proposed accelerator — plus every baseline the paper compares against.
//!
//! This facade crate re-exports the workspace:
//!
//! | Module | Crate | Contents |
//! |---|---|---|
//! | [`model`] | `conv-model` | layer geometry, tensors, reference kernels, workloads |
//! | [`pebble`] | `pebble` | red–blue pebble game / S-partition machinery |
//! | [`bound`] | `comm-bound` | Theorem 2 and the practical Eq. 15 bounds |
//! | [`dataflow`] | `dataflow` | the optimal dataflow + the Fig. 12 baselines |
//! | [`sim`] | `accel-sim` | cycle-level accelerator simulator |
//! | [`energy`] | `energy-model` | Table II energy model |
//! | [`eyeriss`] | `eyeriss-model` | calibrated Eyeriss baseline |
//! | [`core`] | `clb-core` | the [`Accelerator`](clb_core::Accelerator) analysis pipeline |
//! | [`service`] | `clb-service` | the pipeline as a multi-threaded HTTP/JSON server (`clb serve`) |
//!
//! # Quickstart
//!
//! ```
//! use clb::prelude::*;
//!
//! // How much DRAM traffic must VGG-16 conv4_1 cause with 64 KiB on chip?
//! let layer = ConvLayer::square(3, 512, 28, 256, 3, 1)?;
//! let mem = OnChipMemory::from_kib(64.0);
//! let bound_bytes = clb::bound::dram_bound_bytes(&layer, mem);
//!
//! // And how close does the paper's accelerator get?
//! let acc = Accelerator::implementation(1);
//! let report = acc.analyze_layer("conv4_1", &layer)?;
//! let achieved = report.stats.dram.total_bytes() as f64;
//! assert!(achieved < 1.35 * bound_bytes);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub use accel_sim as sim;
pub use clb_core as core;
pub use clb_service as service;
pub use comm_bound as bound;
pub use conv_model as model;
pub use dataflow;
pub use energy_model as energy;
pub use eyeriss_model as eyeriss;
pub use pebble;

/// The items most programs need.
pub mod prelude {
    pub use clb_core::{
        Accelerator, ArchConfig, BoundSummary, DataflowKind, EnergyBreakdown, EnergyParams,
        LayerReport, NetworkReport, OnChipMemory, SimStats, Tiling,
    };
    pub use conv_model::{workloads, ConvLayer, Padding, Tensor4};
}
