//! Cross-workload coverage: the pipeline must handle networks beyond the
//! paper's VGG-16 — strided stems, 1×1 bottlenecks (R = 1), large kernels
//! and fully-connected layers — with every invariant intact.

use clb::core::Accelerator;
use clb::model::workloads;
use clb::prelude::OnChipMemory;

#[test]
fn resnet50_full_analysis() {
    let net = workloads::resnet50(1);
    let acc = Accelerator::implementation(1);
    let report = acc.analyze_network(&net).unwrap();
    assert_eq!(report.layers.len(), 53);
    assert_eq!(report.totals.useful_macs, net.total_macs());
    // Every layer's simulated DRAM traffic dominates its bound.
    for l in &report.layers {
        assert!(
            l.stats.dram.total_words() as f64 >= l.bounds.dram_words * 0.999,
            "{}: measured below bound",
            l.name
        );
    }
    assert!(report.pj_per_mac() > 4.16);
}

#[test]
fn resnet50_bottlenecks_behave_like_mm() {
    // 1x1 layers have R = 1: the reduction factor is sqrt(S), and the
    // measured traffic should still track the bound.
    let net = workloads::resnet50(1);
    let mem = OnChipMemory::from_kib(66.5);
    for l in net.conv_layers().filter(|l| l.layer.is_matrix_multiply()) {
        let bound = clb::bound::dram_bound_words(&l.layer, mem);
        let ours = clb::dataflow::search_ours(&l.layer, mem)
            .traffic
            .total_words() as f64;
        assert!(
            ours < 1.8 * bound,
            "{}: MM-like layer too far above bound ({:.2}x)",
            l.name,
            ours / bound
        );
    }
}

#[test]
fn alexnet_large_kernels_and_strides() {
    let net = workloads::alexnet(1);
    let acc = Accelerator::implementation(4);
    let report = acc.analyze_network(&net).unwrap();
    assert_eq!(report.layers.len(), 5);
    assert_eq!(report.totals.useful_macs, net.total_macs());
    for l in &report.layers {
        assert!(l.stats.utilization.pe > 0.3, "{}: PE util too low", l.name);
    }
}

#[test]
fn fc_layer_runs_and_bounds_hold() {
    let fc = workloads::fully_connected(16, 1024, 512);
    let acc = Accelerator::implementation(1);
    let report = acc.analyze_layer("fc", &fc).unwrap();
    assert_eq!(report.stats.useful_macs, fc.macs());
    assert!(report.stats.dram.total_words() as f64 >= report.bounds.dram_words * 0.999);
}

#[test]
fn training_step_layers_analyzable_or_diagnosed() {
    // Forward and dX of a small layer run; dW of a big layer is diagnosed.
    let small = clb::model::ConvLayer::square(2, 16, 14, 8, 3, 1).unwrap();
    let acc = Accelerator::implementation(1);
    for (name, l) in clb::model::training::training_step("small", &small).unwrap() {
        let result = acc.analyze_layer(&name, &l);
        if name.ends_with(".dw") {
            // 14x14-kernel gradient still fits the IGBuf here.
            assert!(result.is_ok(), "{name} should fit: {result:?}");
        } else {
            assert!(result.is_ok(), "{name}: {result:?}");
        }
    }

    let big = clb::model::ConvLayer::square(3, 64, 112, 32, 3, 1).unwrap();
    let dw = clb::model::training::weight_gradient_layer(&big).unwrap();
    assert!(
        acc.analyze_layer("big.dw", &dw).is_err(),
        "a 112x112-kernel gradient cannot fit the example IGBuf"
    );
}

#[test]
fn reports_serialize_to_json() {
    let net = workloads::resnet_bottleneck(1, 14, 64, 16);
    let report = Accelerator::implementation(1)
        .analyze_network(&net)
        .unwrap();
    let json = serde_json::to_string(&report).unwrap();
    assert!(json.contains("\"network\""));
    let back: clb::core::NetworkReport = serde_json::from_str(&json).unwrap();
    assert_eq!(back.layers.len(), report.layers.len());
    assert_eq!(
        back.totals.dram.total_words(),
        report.totals.dram.total_words()
    );
}

#[test]
fn derived_architecture_matches_table1_class() {
    // Section V methodology: deriving a config from the theory reproduces
    // the paper's example implementation.
    let derived = clb::core::derive_config(16, 16, 32768, 9.0);
    let paper = clb::sim::ArchConfig::implementation(1);
    assert_eq!(derived.wgbuf_entries, paper.wgbuf_entries);
    assert_eq!(derived.igbuf_entries, paper.igbuf_entries);
    assert_eq!(
        derived.effective_onchip_bytes(),
        paper.effective_onchip_bytes()
    );
}

#[test]
fn inception_module_mixed_kernels_analyzable() {
    // 1x1, 3x3 and 5x5 branches (R = 1, 9, 25) all run on one accelerator.
    let net = workloads::inception_module(2, 28, 192);
    let acc = Accelerator::implementation(1);
    let report = acc.analyze_network(&net).unwrap();
    assert_eq!(report.layers.len(), 6);
    assert_eq!(report.totals.useful_macs, net.total_macs());
    for l in &report.layers {
        assert!(
            l.stats.dram.total_words() as f64 >= l.bounds.dram_words * 0.999,
            "{}: measured below bound",
            l.name
        );
        // The 5x5 branch enjoys the largest reduction factor.
        if l.name == "branch5x5" {
            assert_eq!(l.bounds.window_reuse, 25.0);
        }
    }
}
