//! Network-level reproduction checks of the paper's headline claims on
//! VGG-16 (batch 3). Quantitative bands are from `EXPERIMENTS.md`; where our
//! substitution (simulator instead of silicon) shifts a constant, the band
//! is widened but the *direction* of every claim is pinned.

use clb::core::Accelerator;
use clb::model::workloads;
use clb::prelude::OnChipMemory;

fn vgg() -> clb::model::workloads::Network {
    workloads::vgg16(3)
}

#[test]
fn implementations_stay_close_to_dram_bound() {
    // Paper: dataflow ~10% above the bound, implementations 3-4% above the
    // dataflow. Network-level: implementations within ~25% of the bound.
    for index in [1, 4] {
        let acc = Accelerator::implementation(index);
        let report = acc.analyze_network(&vgg()).unwrap();
        let mem = OnChipMemory::from_words(acc.arch().effective_onchip_words() as f64);
        let bound: f64 = vgg()
            .conv_layers()
            .map(|l| clb::bound::dram_bound_words(&l.layer, mem))
            .sum();
        let measured = report.totals.dram.total_words() as f64;
        let gap = measured / bound - 1.0;
        assert!(
            (0.0..0.30).contains(&gap),
            "implementation {index}: DRAM gap to bound {gap:.3}"
        );
    }
}

#[test]
fn gbuf_reduction_vs_eyeriss_in_band() {
    // Paper Fig. 16: 10.9-15.8x GBuf traffic reduction.
    let cfg = clb::eyeriss::EyerissConfig::default();
    let eyeriss: u64 = vgg()
        .conv_layers()
        .map(|l| cfg.gbuf_access_words(&l.layer))
        .sum();
    for index in 1..=5 {
        let report = Accelerator::implementation(index)
            .analyze_network(&vgg())
            .unwrap();
        let ours = report.totals.gbuf.total_words();
        let factor = eyeriss as f64 / ours as f64;
        assert!(
            (8.0..20.0).contains(&factor),
            "implementation {index}: GBuf reduction {factor:.1}x outside band"
        );
    }
}

#[test]
fn reg_traffic_close_to_macs_bound() {
    // Paper Fig. 17: Reg access volume 5.9-11.8% above #MACs. Our band: <25%.
    let macs = vgg().total_macs() as f64;
    for index in 1..=5 {
        let report = Accelerator::implementation(index)
            .analyze_network(&vgg())
            .unwrap();
        let over = report.totals.reg.total_writes() as f64 / macs - 1.0;
        assert!(
            (0.0..0.25).contains(&over),
            "implementation {index}: Reg overhead {over:.3}"
        );
    }
}

#[test]
fn energy_gap_to_theoretical_best_in_band() {
    // Paper Fig. 18: the gap between implementations and the theoretical
    // best is 37-87%. Our simulator lands at 18-59%; pin [10%, 90%].
    let net = vgg();
    let macs = net.total_macs();
    for index in 1..=5 {
        let acc = Accelerator::implementation(index);
        let report = acc.analyze_network(&net).unwrap();
        let mem = OnChipMemory::from_words(acc.arch().effective_onchip_words() as f64);
        let dram_bound: f64 = net
            .conv_layers()
            .map(|l| clb::bound::dram_bound_words(&l.layer, mem))
            .sum();
        let best = clb::core::energy::energy_lower_bound_pj(macs, dram_bound) / macs as f64;
        let gap = report.pj_per_mac() / best - 1.0;
        assert!(
            (0.10..0.90).contains(&gap),
            "implementation {index}: energy gap {gap:.2}"
        );
    }
}

#[test]
fn accelerator_is_computation_dominant() {
    // Paper: "MAC operations take up the largest portion of the total
    // energy consumption" — the design is computation dominant.
    for index in 1..=5 {
        let report = Accelerator::implementation(index)
            .analyze_network(&vgg())
            .unwrap();
        let e = report.energy;
        let mac = e.mac_pj;
        for (name, other) in [
            ("dram", e.dram_pj),
            ("gbuf", e.gbuf_pj),
            ("greg", e.greg_pj),
            ("other", e.other_pj),
        ] {
            assert!(
                mac >= other,
                "implementation {index}: {name} energy exceeds MAC energy"
            );
        }
        // Implementation 1's 256 B LRegs sit essentially at the MAC energy
        // (Fig. 18 shows the same near-tie); allow a 15% margin there.
        assert!(
            mac * 1.15 >= e.lreg_pj(),
            "implementation {index}: LReg energy far exceeds MAC energy"
        );
    }
}

#[test]
fn speedups_over_eyeriss_in_band() {
    // Paper Fig. 19: 9.8-42.3x over Eyeriss. Our simulator: same order,
    // wider band [8x, 90x].
    let eyeriss_s = clb::eyeriss::vgg16_execution_seconds(3);
    let mut by_pes: Vec<(usize, f64)> = Vec::new();
    for index in 1..=5 {
        let acc = Accelerator::implementation(index);
        let report = acc.analyze_network(&vgg()).unwrap();
        let speedup = eyeriss_s / report.seconds;
        assert!(
            (8.0..90.0).contains(&speedup),
            "implementation {index}: speedup {speedup:.1}"
        );
        by_pes.push((acc.arch().pe_count(), report.seconds));
    }
    // More PEs -> faster (implementations 3 and 4 share a PE count and may
    // differ slightly from their memory split).
    for w in by_pes.windows(2) {
        if w[1].0 > w[0].0 {
            assert!(
                w[1].1 < w[0].1,
                "more PEs should be faster: {:?} -> {:?}",
                w[0],
                w[1]
            );
        }
    }
}

#[test]
fn power_rises_with_pe_count() {
    // Paper Fig. 19: power grows from ~0.9 W to ~5 W across implementations.
    let p1 = Accelerator::implementation(1)
        .analyze_network(&vgg())
        .unwrap()
        .power_w();
    let p5 = Accelerator::implementation(5)
        .analyze_network(&vgg())
        .unwrap()
        .power_w();
    assert!(
        p5 > 2.0 * p1,
        "power should grow strongly with PEs: {p1} -> {p5}"
    );
    assert!((0.2..20.0).contains(&p1));
}

#[test]
fn utilizations_match_fig20_shape() {
    for index in 1..=5 {
        let u = Accelerator::implementation(index)
            .analyze_network(&vgg())
            .unwrap()
            .totals
            .utilization;
        assert!(
            u.lreg > 0.7,
            "implementation {index}: LReg util {:.2}",
            u.lreg
        );
        assert!(u.pe > 0.85, "implementation {index}: PE util {:.2}", u.pe);
        assert!(
            u.memory_overall > 0.7,
            "implementation {index}: overall util {:.2}",
            u.memory_overall
        );
    }
}

#[test]
fn dram_access_per_mac_matches_table3_scale() {
    // Table III: ours 0.0033 words/MAC at 173.5 KB. Accept ±15%.
    let net = vgg();
    let mem = OnChipMemory::from_kib(clb::eyeriss::EFFECTIVE_ONCHIP_KIB);
    let words: u64 = net
        .conv_layers()
        .map(|l| {
            clb::dataflow::search_ours(&l.layer, mem)
                .traffic
                .total_words()
        })
        .sum();
    let per_mac = words as f64 / net.total_macs() as f64;
    assert!(
        (0.0028..0.0038).contains(&per_mac),
        "words/MAC {per_mac:.4}"
    );
}

#[test]
fn flexflow_comparison_direction_holds() {
    // Paper: our DRAM access/MAC beats FlexFlow's published 0.0049 by ~33%.
    let net = vgg();
    let mem = OnChipMemory::from_kib(clb::eyeriss::EFFECTIVE_ONCHIP_KIB);
    let words: u64 = net
        .conv_layers()
        .map(|l| {
            clb::dataflow::search_ours(&l.layer, mem)
                .traffic
                .total_words()
        })
        .sum();
    let per_mac = words as f64 / net.total_macs() as f64;
    assert!(
        per_mac < 0.0049,
        "should beat FlexFlow's 0.0049, got {per_mac:.4}"
    );
}
