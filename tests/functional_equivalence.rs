//! Property-based functional validation: the cycle simulator's Q8.8
//! datapath must compute exactly what the reference loop nest computes,
//! for arbitrary layers, tilings and architectures.

use clb::model::fixed::{Acc32, Q8_8};
use clb::model::{ConvLayer, Padding, Tensor4};
use clb::sim::ArchConfig;
use proptest::prelude::*;

/// Reference Q8.8 convolution with wide accumulation, in canonical order.
fn reference_q8(
    layer: &ConvLayer,
    input: &Tensor4<Q8_8>,
    weights: &Tensor4<Q8_8>,
) -> Tensor4<Q8_8> {
    let mut out = Tensor4::zeros(
        layer.batch(),
        layer.out_channels(),
        layer.output_height(),
        layer.output_width(),
    );
    let pad = layer.padding();
    for i in 0..layer.batch() {
        for oz in 0..layer.out_channels() {
            for oy in 0..layer.output_height() {
                for ox in 0..layer.output_width() {
                    let mut acc = Acc32::ZERO;
                    for kz in 0..layer.in_channels() {
                        for ky in 0..layer.kernel_height() {
                            for kx in 0..layer.kernel_width() {
                                let yy =
                                    (oy * layer.stride() + ky) as isize - pad.vertical as isize;
                                let xx =
                                    (ox * layer.stride() + kx) as isize - pad.horizontal as isize;
                                if yy >= 0
                                    && xx >= 0
                                    && (yy as usize) < layer.in_height()
                                    && (xx as usize) < layer.in_width()
                                {
                                    acc = acc.mac(
                                        input[(i, kz, yy as usize, xx as usize)],
                                        weights[(oz, kz, ky, kx)],
                                    );
                                }
                            }
                        }
                    }
                    out[(i, oz, oy, ox)] = acc.to_q8_8();
                }
            }
        }
    }
    out
}

fn layer_strategy() -> impl Strategy<Value = ConvLayer> {
    (
        1usize..=2,
        1usize..=6,
        4usize..=10,
        1usize..=4,
        1usize..=3,
        1usize..=2,
        prop::bool::ANY,
    )
        .prop_filter_map("kernel must fit", |(b, co, size, ci, k, s, pad)| {
            let padding = if pad {
                Padding::same(k)
            } else {
                Padding::none()
            };
            ConvLayer::builder()
                .batch(b)
                .out_channels(co)
                .in_channels(ci)
                .input(size, size)
                .kernel(k, k)
                .stride(s)
                .padding(padding)
                .build()
                .ok()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulator_functional_equals_reference(
        layer in layer_strategy(),
        seed in 0u64..1_000_000,
        tb in 1usize..=2,
        tz in 1usize..=6,
        ty in 1usize..=8,
        tx in 1usize..=8,
    ) {
        let (b, ci, hi, wi) = (layer.batch(), layer.in_channels(), layer.in_height(), layer.in_width());
        let (co, kh, kw) = (layer.out_channels(), layer.kernel_height(), layer.kernel_width());
        // Deterministic pseudo-random Q8.8 data.
        let gen = |i: u64| {
            let mixed = seed
                .wrapping_mul(6364136223846793005)
                .wrapping_add(i.wrapping_mul(1442695040888963407));
            Q8_8::from_f64(((mixed >> 33) % 512) as f64 / 64.0 - 4.0)
        };
        let input = {
            let mut c = 0u64;
            Tensor4::from_fn(b, ci, hi, wi, |_, _, _, _| { c += 1; gen(c) })
        };
        let weights = {
            let mut c = 1_000_000u64;
            Tensor4::from_fn(co, ci, kh, kw, |_, _, _, _| { c += 1; gen(c) })
        };

        let tiling = clb::dataflow::Tiling::clamped(&layer, tb, tz, ty, tx);
        let arch = ArchConfig::example();
        // Skip tilings the architecture cannot hold (the planner would never
        // produce them).
        prop_assume!(clb::core::tiling_feasible(&layer, &tiling, &arch));

        let (out, stats) =
            clb::sim::simulate_functional(&layer, &tiling, &arch, &input, &weights).unwrap();
        let expected = reference_q8(&layer, &input, &weights);
        prop_assert_eq!(out, expected);
        prop_assert_eq!(stats.useful_macs, layer.macs());
    }

    #[test]
    fn simulator_counters_match_analytic_dataflow(
        layer in layer_strategy(),
        tb in 1usize..=2,
        tz in 1usize..=6,
        ty in 1usize..=8,
        tx in 1usize..=8,
    ) {
        let tiling = clb::dataflow::Tiling::clamped(&layer, tb, tz, ty, tx);
        let arch = ArchConfig::example();
        prop_assume!(clb::core::tiling_feasible(&layer, &tiling, &arch));

        let stats = clb::sim::simulate(&layer, &tiling, &arch).unwrap();
        let analytic = clb::dataflow::our_dataflow_traffic(&layer, &tiling);
        prop_assert_eq!(stats.dram.input_reads, analytic.input_reads);
        prop_assert_eq!(stats.dram.weight_reads, analytic.weight_reads);
        prop_assert_eq!(stats.dram.output_writes, analytic.output_writes);
    }

    #[test]
    fn measured_traffic_never_below_ideal(
        layer in layer_strategy(),
        tz in 1usize..=6,
        ty in 1usize..=8,
        tx in 1usize..=8,
    ) {
        let tiling = clb::dataflow::Tiling::clamped(&layer, 1, tz, ty, tx);
        let traffic = clb::dataflow::our_dataflow_traffic(&layer, &tiling);
        // No tiling may move less than every datum once. Inputs are only
        // fully covered when there is no padding and the stride does not
        // skip pixels (stride <= kernel).
        let covers_input = layer.padding() == Padding::none()
            && layer.stride() <= layer.kernel_width().min(layer.kernel_height())
            && (layer.output_height() - 1) * layer.stride() + layer.kernel_height()
                == layer.in_height()
            && (layer.output_width() - 1) * layer.stride() + layer.kernel_width()
                == layer.in_width();
        let input_floor = if covers_input { layer.input_words() } else { 0 };
        prop_assert!(traffic.input_reads >= input_floor);
        prop_assert!(traffic.weight_reads >= layer.weight_words());
        prop_assert_eq!(traffic.output_writes, layer.output_words());
    }
}
