//! End-to-end validation of the theory chain on small layers:
//! Lemma 1 (DAG size) → Lemma 2 (T(S)) → Eq. 12 (P(S)) → Theorem 1 →
//! Theorem 2, squeezed against real measured schedules.

use clb::bound::OnChipMemory;
use clb::model::{ConvLayer, Padding};
use clb::pebble;

fn small_layer() -> ConvLayer {
    ConvLayer::builder()
        .batch(1)
        .out_channels(4)
        .in_channels(4)
        .input(8, 8)
        .kernel(3, 3)
        .stride(1)
        .padding(Padding::none())
        .build()
        .unwrap()
}

#[test]
fn lemma1_node_count_on_dag() {
    let layer = small_layer();
    let conv = pebble::build_conv_dag(&layer);
    assert_eq!(conv.dag.internal_count() as u64, 2 * layer.macs());
    assert_eq!(
        conv.dag.input_count() as u64,
        layer.input_words() + layer.weight_words()
    );
}

#[test]
fn lemma2_brute_force_respects_bound() {
    // Exhaustively maximise the single-block term count and compare against
    // the closed form of Lemma 2 for the layer's R.
    let layer = small_layer();
    let r = layer.window_reuse();
    for s in [64u64, 256, 1024] {
        let brute = pebble::max_terms_brute_force(s, r);
        let bound = pebble::max_terms_bound(s, r);
        assert!(brute <= bound + 1e-9, "S={s}: {brute} > {bound}");
    }
}

#[test]
fn greedy_partition_vs_counting_lower_bound() {
    // The greedy S-partition is an upper bound on P(S); Eq. 12 is a lower
    // bound. The chain is consistent iff lower <= upper for every S.
    let layer = small_layer();
    let conv = pebble::build_conv_dag(&layer);
    let r = layer.window_reuse();
    for s in [16usize, 32, 64, 128] {
        let upper = pebble::greedy_partition(&conv.dag, s).len() as u64;
        let lower = pebble::p_lower_bound(conv.dag.internal_count() as u64, s as u64, r);
        assert!(
            lower <= upper,
            "S={s}: counting bound {lower} exceeds constructive partition {upper}"
        );
    }
}

#[test]
fn theorem2_pebble_bound_below_measured_schedule() {
    // Any real schedule's DRAM traffic must dominate the Theorem 1/2 bound.
    // Use the simulator's counted traffic for the paper's dataflow.
    let layer = small_layer();
    for s_words in [128u64, 256, 512] {
        let q_bound = pebble::theorem2_q_lower(&layer, s_words);
        let mem = OnChipMemory::from_words(s_words as f64);
        let measured = clb::dataflow::search_ours(&layer, mem)
            .traffic
            .total_words();
        assert!(
            q_bound <= measured,
            "S={s_words}: pebble bound {q_bound} exceeds measured {measured}"
        );
    }
}

#[test]
fn theorem2_and_eq15_agree_on_scaling() {
    // Both bounds must scale as 1/sqrt(S) in the read-dominated regime.
    let layer = ConvLayer::square(1, 64, 32, 64, 3, 1).unwrap();
    let ratio_pebble = pebble::theorem2_q_lower(&layer, 1024) as f64
        / pebble::theorem2_q_lower(&layer, 4096) as f64;
    let ratio_eq15 = clb::bound::theorem2_dram_words(&layer, OnChipMemory::from_words(1024.0))
        / clb::bound::theorem2_dram_words(&layer, OnChipMemory::from_words(4096.0));
    assert!((ratio_eq15 - 2.0).abs() < 1e-12);
    assert!((ratio_pebble - 2.0).abs() < 0.3);
}

#[test]
fn s_partition_checker_validates_greedy_across_sizes() {
    let layer = ConvLayer::builder()
        .batch(1)
        .out_channels(2)
        .in_channels(3)
        .input(6, 6)
        .kernel(3, 3)
        .padding(Padding::none())
        .build()
        .unwrap();
    let conv = pebble::build_conv_dag(&layer);
    for s in [8usize, 24, 72, 216] {
        let p = pebble::greedy_partition(&conv.dag, s);
        pebble::check_s_partition(&conv.dag, &p, s).unwrap();
    }
}

#[test]
fn fc_layer_matches_hong_kung_mm_bound() {
    // R = 1: Theorem 2 must reduce to the classic MM bound #MACs/sqrt(S).
    let fc = clb::model::workloads::fully_connected(4, 256, 256);
    let mem = OnChipMemory::from_words(4096.0);
    let bound = clb::bound::theorem2_dram_words(&fc, mem);
    let classic = fc.macs() as f64 / 4096.0_f64.sqrt();
    assert!((bound - classic).abs() / classic < 1e-12);
}
