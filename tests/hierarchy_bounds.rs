//! Section IV-C summary check: the accelerator respects the lower bound at
//! *every* level of the three-level hierarchy simultaneously, with the gap
//! ratios the paper reports.

use clb::bound::{HierarchyBounds, Level, MeasuredTraffic};
use clb::core::Accelerator;
use clb::model::workloads;
use clb::prelude::OnChipMemory;

fn measured_of(report: &clb::core::LayerReport) -> MeasuredTraffic {
    MeasuredTraffic {
        dram_words: report.stats.dram.total_words(),
        gbuf_read_words: report.stats.gbuf.input_reads + report.stats.gbuf.weight_reads,
        reg_writes: report.stats.reg.total_writes(),
    }
}

#[test]
fn all_three_bounds_hold_on_every_vgg_layer() {
    let acc = Accelerator::implementation(1);
    let mem = OnChipMemory::from_words(acc.arch().effective_onchip_words() as f64);
    let report = acc.analyze_network(&workloads::vgg16(3)).unwrap();
    for l in &report.layers {
        let bounds = HierarchyBounds::of(&l.layer, mem);
        let gaps = bounds.gaps(&measured_of(l));
        assert!(
            gaps.bounds_hold(),
            "{}: a hierarchy bound is violated ({gaps:?})",
            l.name
        );
    }
}

#[test]
fn network_gaps_match_paper_bands() {
    let acc = Accelerator::implementation(1);
    let mem = OnChipMemory::from_words(acc.arch().effective_onchip_words() as f64);
    let report = acc.analyze_network(&workloads::vgg16(3)).unwrap();

    let mut dram_b = 0.0;
    let mut gbuf_b = 0.0;
    let mut reg_b = 0u64;
    for l in &report.layers {
        let b = HierarchyBounds::of(&l.layer, mem);
        dram_b += b.dram_words;
        gbuf_b += b.gbuf_words;
        reg_b += b.reg_writes;
    }
    let totals = MeasuredTraffic {
        dram_words: report.totals.dram.total_words(),
        gbuf_read_words: report.totals.gbuf.input_reads + report.totals.gbuf.weight_reads,
        reg_writes: report.totals.reg.total_writes(),
    };
    let dram_gap = totals.dram_words as f64 / dram_b;
    let gbuf_gap = totals.gbuf_read_words as f64 / gbuf_b;
    let reg_gap = totals.reg_writes as f64 / reg_b as f64;
    // Paper: DRAM ~1.13x (10% dataflow + 3% splitting); GBuf reads are
    // 1.33x the *DRAM reads*, which compounds with the DRAM gap to ~1.5-1.7x
    // against the analytic GBuf bound; Regs 1.06-1.12x.
    assert!((1.0..1.30).contains(&dram_gap), "DRAM gap {dram_gap:.3}");
    assert!((1.0..1.85).contains(&gbuf_gap), "GBuf gap {gbuf_gap:.3}");
    assert!((1.0..1.25).contains(&reg_gap), "Reg gap {reg_gap:.3}");
}

#[test]
fn gbuf_is_the_loosest_level() {
    // The halo reads make GBuf the worst of the three gaps, as in Table IV
    // versus Fig. 14/17.
    let acc = Accelerator::implementation(1);
    let mem = OnChipMemory::from_words(acc.arch().effective_onchip_words() as f64);
    let layer = workloads::vgg16(3).layer(5).unwrap().layer; // conv3_2
    let report = acc.analyze_layer("conv3_2", &layer).unwrap();
    let bounds = HierarchyBounds::of(&layer, mem);
    let (level, _) = bounds.gaps(&measured_of(&report)).worst();
    assert_eq!(level, Level::Gbuf);
}
