//! Quickstart: bound → plan → simulate → energy, for one layer.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // VGG-16 conv3_1 at the paper's batch size.
    let layer = ConvLayer::square(3, 256, 56, 128, 3, 1)?;
    println!("layer: {layer}");
    println!("MACs: {:.2} G", layer.macs() as f64 / 1e9);
    println!("sliding-window reuse R = {}", layer.window_reuse());

    // 1. The theoretical lower bound at 66.5 KiB of effective on-chip memory.
    let mem = OnChipMemory::from_kib(66.5);
    let bound_mb = clb::bound::dram_bound_bytes(&layer, mem) / 1e6;
    println!("\nEq. 15 DRAM lower bound @ {mem}: {bound_mb:.1} MB");

    // 2. The communication-optimal dataflow (abstract, same memory).
    let choice = clb::dataflow::search_ours(&layer, mem);
    println!(
        "our dataflow, tiling {}: {:.1} MB ({:+.1}% vs bound)",
        choice.tiling,
        choice.traffic.total_bytes() as f64 / 1e6,
        (choice.traffic.total_bytes() as f64 / 1e6 / bound_mb - 1.0) * 100.0
    );

    // 3. The concrete accelerator (Table I implementation 1).
    let acc = Accelerator::implementation(1);
    let report = acc.analyze_layer("conv3_1", &layer)?;
    println!(
        "\nimplementation 1 ({} PEs, {:.1} KiB effective memory):",
        acc.arch().pe_count(),
        acc.arch().effective_onchip_bytes() as f64 / 1024.0
    );
    println!(
        "  DRAM:  {:.1} MB ({:+.1}% vs bound)",
        report.stats.dram.total_bytes() as f64 / 1e6,
        (report.dram_vs_bound() - 1.0) * 100.0
    );
    println!(
        "  GBuf:  {:.1} MB reads+writes",
        report.stats.gbuf.total_bytes() as f64 / 1e6
    );
    println!(
        "  Regs:  {:.2} G writes (bound: {:.2} G = #MACs)",
        report.stats.reg.total_writes() as f64 / 1e9,
        report.bounds.reg_writes as f64 / 1e9
    );
    println!("  energy: {:.2} pJ/MAC", report.pj_per_mac());
    println!(
        "  time:  {:.1} ms ({} stall cycles)",
        report.stats.seconds(acc.arch().core_freq_hz) * 1e3,
        report.stats.stall_cycles
    );
    println!(
        "  PE utilization: {:.1}%",
        report.stats.utilization.pe * 100.0
    );
    Ok(())
}
