//! Design methodology demo (Section V): derive an accelerator configuration
//! from the theory — Psum budget + optimality conditions → GBuf/LReg sizes —
//! and check it against the paper's hand-built example.
//!
//! ```text
//! cargo run --release --example design_methodology [pe_rows] [pe_cols] [psum_kb]
//! ```

use clb::core::{derive_config, optimal_psum_fraction, Accelerator};
use clb::prelude::*;

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let rows = arg(1, 16);
    let cols = arg(2, 16);
    let psum_kb = arg(3, 64);
    let psum_words = psum_kb * 1024 / 2;

    println!("deriving a design for {rows}x{cols} PEs with {psum_kb} KB of Psums:\n");
    let cfg = derive_config(rows, cols, psum_words, 9.0);
    println!(
        "  WGBuf: {} entries (z_max = sqrt(S) at R=1, rounded up)",
        cfg.wgbuf_entries
    );
    println!(
        "  IGBuf: {} entries (u_max = sqrt(S*R) at R=9, plus halo margin)",
        cfg.igbuf_entries
    );
    println!("  LRegs: {} entries/PE", cfg.lreg_entries_per_pe);
    println!("  GRegs: {:.1} KB", cfg.greg_bytes as f64 / 1024.0);
    println!(
        "  effective on-chip memory: {:.3} KB",
        cfg.effective_onchip_bytes() as f64 / 1024.0
    );

    if rows == 16 && cols == 16 && psum_kb == 64 {
        let paper = ArchConfig::implementation(1);
        assert_eq!(cfg.wgbuf_entries, paper.wgbuf_entries);
        assert_eq!(cfg.igbuf_entries, paper.igbuf_entries);
        println!("\n-> exactly the paper's Section V example (implementation 1) ✓");
    }

    // Why most memory goes to Psums (Section IV-C), numerically:
    let layer = ConvLayer::square(3, 256, 56, 128, 3, 1)?;
    println!("\nsweeping the Psum share of a 66.5 KB budget on conv3_1:");
    let total = 66.5 * 1024.0 / 2.0;
    for frac in [0.25, 0.5, 0.75, 0.9, 0.95] {
        let mem = OnChipMemory::from_words(total * frac);
        let q = clb::dataflow::search_ours(&layer, mem)
            .traffic
            .total_bytes();
        println!(
            "  Psum share {:>3.0}% -> {:.1} MB DRAM",
            frac * 100.0,
            q as f64 / 1e6
        );
    }
    let (best, _) = optimal_psum_fraction(&layer, total);
    println!(
        "  optimum at ~{:.0}% — \"most of the effective on-chip memory",
        best * 100.0
    );
    println!("  should be assigned to Psums\" (Section IV-C) ✓");

    // Run the derived design end to end.
    let acc = Accelerator::new(cfg);
    let report = acc.analyze_layer("conv3_1", &layer)?;
    println!(
        "\nderived design on conv3_1: {:.1} MB DRAM ({:+.1}% vs bound), {:.2} pJ/MAC",
        report.stats.dram.total_bytes() as f64 / 1e6,
        (report.dram_vs_bound() - 1.0) * 100.0,
        report.pj_per_mac()
    );
    Ok(())
}
