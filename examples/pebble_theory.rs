//! Pebble-game theory demo: builds the DAG of a small convolutional layer,
//! constructs and validates S-partitions, and squeezes the Theorem 1/2
//! bound chain against real measured traffic.
//!
//! ```text
//! cargo run --release --example pebble_theory
//! ```

use clb::model::{ConvLayer, Padding};
use clb::pebble;
use clb::prelude::OnChipMemory;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = ConvLayer::builder()
        .batch(1)
        .out_channels(4)
        .in_channels(4)
        .input(8, 8)
        .kernel(3, 3)
        .padding(Padding::none())
        .build()?;
    println!("layer: {layer}");

    // Lemma 1: the DAG node counts.
    let conv = pebble::build_conv_dag(&layer);
    println!(
        "DAG: {} inputs, {} internal/output nodes (Lemma 1 predicts {})",
        conv.dag.input_count(),
        conv.dag.internal_count(),
        2 * layer.macs()
    );

    // Lemma 2: brute-force vs closed form.
    let r = layer.window_reuse();
    println!("\nLemma 2 (max terms from S memory units, R = {r}):");
    println!(
        "{:>8} {:>14} {:>14} {:>7}",
        "S", "brute force", "closed form", "ratio"
    );
    for s in [64u64, 256, 1024, 4096] {
        let brute = pebble::max_terms_brute_force(s, r);
        let bound = pebble::max_terms_bound(s, r);
        println!(
            "{s:>8} {brute:>14.0} {bound:>14.0} {:>6.1}%",
            brute / bound * 100.0
        );
    }

    // S-partitions: greedy construction + validity check.
    println!("\nS-partitions (greedy upper bound vs Eq. 12 counting lower bound):");
    println!("{:>8} {:>10} {:>10}", "S", "greedy h", "P(S) >=");
    for s in [16usize, 32, 64, 128, 256] {
        let partition = pebble::greedy_partition(&conv.dag, s);
        pebble::check_s_partition(&conv.dag, &partition, s)
            .expect("greedy partitions are valid S-partitions");
        let lower = pebble::p_lower_bound(conv.dag.internal_count() as u64, s as u64, r);
        println!("{s:>8} {:>10} {lower:>10}", partition.len());
    }

    // Theorem 1 + 2 vs a real schedule.
    println!("\nTheorem 2 bound vs the measured optimal dataflow:");
    println!("{:>8} {:>14} {:>14}", "S words", "Q bound", "measured Q");
    for s in [128u64, 256, 512, 1024] {
        let q = pebble::theorem2_q_lower(&layer, s);
        let measured = clb::dataflow::search_ours(&layer, OnChipMemory::from_words(s as f64))
            .traffic
            .total_words();
        assert!(q <= measured, "bound must hold");
        println!("{s:>8} {q:>14} {measured:>14}");
    }
    println!("\nbound chain holds on every point ✓");
    Ok(())
}
