//! Dataflow explorer: compare all eight dataflows on a custom layer across
//! a range of on-chip memory sizes.
//!
//! ```text
//! cargo run --release --example dataflow_explorer [Co] [size] [Ci] [k] [stride]
//! ```
//!
//! Defaults to VGG-16 conv4_1 (512 channels on a 28×28 map from 256).

use clb::prelude::*;
use dataflow::{found_minimum, search_dataflow};

fn arg(n: usize, default: usize) -> usize {
    std::env::args()
        .nth(n)
        .and_then(|s| s.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let co = arg(1, 512);
    let size = arg(2, 28);
    let ci = arg(3, 256);
    let k = arg(4, 3);
    let stride = arg(5, 1);
    let layer = ConvLayer::square(3, co, size, ci, k, stride)?;
    println!("exploring {layer} (R = {})\n", layer.window_reuse());

    print!("{:<16}", "memory:");
    let sizes = [16.0, 32.0, 64.0, 128.0, 256.0];
    for kib in sizes {
        print!(" {:>9}", format!("{kib}KiB"));
    }
    println!();

    print!("{:<16}", "lower bound");
    for kib in sizes {
        let mem = OnChipMemory::from_kib(kib);
        print!(" {:>9.2}", clb::bound::dram_bound_bytes(&layer, mem) / 1e6);
    }
    println!("  (MB)");

    print!("{:<16}", "found minimum");
    for kib in sizes {
        let mem = OnChipMemory::from_kib(kib);
        print!(
            " {:>9.2}",
            found_minimum(&layer, mem).traffic.total_bytes() as f64 / 1e6
        );
    }
    println!();

    for kind in DataflowKind::ALL {
        print!("{:<16}", kind.name());
        for kib in sizes {
            let mem = OnChipMemory::from_kib(kib);
            match search_dataflow(kind, &layer, mem) {
                Some(c) => print!(" {:>9.2}", c.traffic.total_bytes() as f64 / 1e6),
                None => print!(" {:>9}", "-"),
            }
        }
        println!();
    }

    // Show the chosen tiling of our dataflow at 64 KiB and its balance.
    let mem = OnChipMemory::from_kib(64.0);
    let ours = search_dataflow(DataflowKind::Ours, &layer, mem).unwrap();
    println!(
        "\nour tiling at 64 KiB: {} (u = {}, R*z = {})",
        ours.tiling,
        ours.tiling.u(),
        layer.window_reuse() * ours.tiling.z as f64
    );
    println!(
        "input reads {:.2} MB vs weight reads {:.2} MB (balanced loading, Section IV-A)",
        ours.traffic.input_reads as f64 * 2.0 / 1e6,
        ours.traffic.weight_reads as f64 * 2.0 / 1e6
    );
    Ok(())
}
