//! Functional verification demo: the cycle simulator actually computes the
//! convolution (Q8.8 datapath with 32-bit accumulation), bit-exactly equal
//! to the reference loop nest.
//!
//! ```text
//! cargo run --release --example functional_verification
//! ```

use clb::model::fixed::{Acc32, Q8_8};
use clb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let layer = ConvLayer::square(2, 16, 20, 8, 3, 1)?;
    println!("functionally simulating {layer}");

    // Pseudo-random Q8.8 tensors (deterministic).
    let mut state = 0x2545F4914F6CDD1Du64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        Q8_8::from_f64(((state >> 40) % 1024) as f64 / 128.0 - 4.0)
    };
    let input = Tensor4::from_fn(2, 8, 20, 20, |_, _, _, _| next());
    let weights = Tensor4::from_fn(16, 8, 3, 3, |_, _, _, _| next());

    let acc = Accelerator::implementation(1);
    let (out, stats) = acc.run_functional(&layer, &input, &weights)?;

    // Independent reference with the same arithmetic (wide accumulate, one
    // saturating write-back).
    let pad = layer.padding();
    let mut mismatches = 0usize;
    for i in 0..layer.batch() {
        for oz in 0..layer.out_channels() {
            for oy in 0..layer.output_height() {
                for ox in 0..layer.output_width() {
                    let mut a = Acc32::ZERO;
                    for kz in 0..layer.in_channels() {
                        for ky in 0..3 {
                            for kx in 0..3 {
                                let yy = (oy + ky) as isize - pad.vertical as isize;
                                let xx = (ox + kx) as isize - pad.horizontal as isize;
                                if yy >= 0 && xx >= 0 && (yy as usize) < 20 && (xx as usize) < 20 {
                                    a = a.mac(
                                        input[(i, kz, yy as usize, xx as usize)],
                                        weights[(oz, kz, ky, kx)],
                                    );
                                }
                            }
                        }
                    }
                    if out[(i, oz, oy, ox)] != a.to_q8_8() {
                        mismatches += 1;
                    }
                }
            }
        }
    }

    println!("outputs checked: {} — mismatches: {mismatches}", out.len());
    assert_eq!(mismatches, 0, "simulator output must be bit-exact");
    println!("\nwhile computing, the simulator counted:");
    println!("  DRAM words:  {}", stats.dram.total_words());
    println!("  GBuf words:  {}", stats.gbuf.total_words());
    println!("  Reg writes:  {}", stats.reg.total_writes());
    println!(
        "  MACs (useful/issued): {}/{}",
        stats.useful_macs, stats.issued_slots
    );
    println!(
        "  cycles: {} compute + {} stall",
        stats.compute_cycles, stats.stall_cycles
    );
    println!("\nbit-exact ✓ — the traffic numbers describe a real execution.");
    Ok(())
}
