//! Full VGG-16 (batch 3) analysis on all five Table I implementations —
//! the paper's complete evaluation workload in one run.
//!
//! ```text
//! cargo run --release --example vgg16_analysis
//! ```

use clb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let net = workloads::vgg16(3);
    println!(
        "{} — {} conv layers, {:.1} GMACs total\n",
        net.name(),
        net.len(),
        net.total_macs() as f64 / 1e9
    );

    println!(
        "{:<8} {:>7} {:>10} {:>10} {:>10} {:>9} {:>9} {:>8}",
        "implem", "PEs", "DRAM(MB)", "GBuf(MB)", "Reg(G wr)", "pJ/MAC", "time(s)", "PE util"
    );
    for index in 1..=5 {
        let acc = Accelerator::implementation(index);
        let report = acc.analyze_network(&net)?;
        println!(
            "{:<8} {:>7} {:>10.1} {:>10.1} {:>10.2} {:>9.2} {:>9.3} {:>7.1}%",
            format!("#{index}"),
            acc.arch().pe_count(),
            report.totals.dram.total_bytes() as f64 / 1e6,
            report.totals.gbuf.total_bytes() as f64 / 1e6,
            report.totals.reg.total_writes() as f64 / 1e9,
            report.pj_per_mac(),
            report.seconds,
            report.totals.utilization.pe * 100.0,
        );
    }

    // Per-layer detail for implementation 1 (the Fig. 14 view).
    let acc = Accelerator::implementation(1);
    let report = acc.analyze_network(&net)?;
    println!("\nimplementation 1, per layer:");
    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>12} {:>10}",
        "layer", "DRAM(MB)", "bound(MB)", "vs bound", "tiling", "pJ/MAC"
    );
    for l in &report.layers {
        println!(
            "{:<10} {:>10.1} {:>10.1} {:>9.1}% {:>12} {:>10.2}",
            l.name,
            l.stats.dram.total_bytes() as f64 / 1e6,
            l.bounds.dram_words * 2.0 / 1e6,
            (l.dram_vs_bound() - 1.0) * 100.0,
            l.tiling.to_string(),
            l.pj_per_mac(),
        );
    }

    // Eyeriss comparison (Fig. 15/16, Table III).
    let eyeriss_cfg = clb::eyeriss::EyerissConfig::default();
    let eyeriss_dram: f64 = clb::eyeriss::calibrated_dram_mb(&eyeriss_cfg, &net, false)
        .iter()
        .map(|(_, mb)| mb)
        .sum();
    let eyeriss_gbuf_mb: f64 = net
        .conv_layers()
        .map(|l| eyeriss_cfg.gbuf_access_words(&l.layer) as f64 * 2.0 / 1e6)
        .sum();
    println!(
        "\nEyeriss (published/calibrated): DRAM {eyeriss_dram:.1} MB, GBuf {eyeriss_gbuf_mb:.0} MB"
    );
    println!(
        "our implem 1 GBuf reduction vs Eyeriss: {:.1}x",
        eyeriss_gbuf_mb / (report.totals.gbuf.total_bytes() as f64 / 1e6)
    );
    println!(
        "our implem 1 speedup vs Eyeriss: {:.1}x",
        clb::eyeriss::vgg16_execution_seconds(3) / report.seconds
    );
    Ok(())
}
