//! Training-pass analysis: the paper's bound and dataflow apply to the
//! backward convolutions of CNN training, because both gradients are
//! themselves convolutions (Section II-A's claim, made executable).
//!
//! ```text
//! cargo run --release --example training_analysis
//! ```

use clb::model::training;
use clb::model::workloads::Network;
use clb::prelude::*;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One VGG-16 block's forward layer, batch 3.
    let forward = ConvLayer::square(3, 256, 56, 128, 3, 1)?;
    let step = training::training_step("conv3_1", &forward)?;
    let net = Network::new("conv3_1 training step", step);

    println!("training step of {forward}:\n");
    println!(
        "{:<14} {:>9} {:>6} {:>12} {:>12} {:>10}",
        "pass", "GMACs", "R", "bound(MB)", "ours(MB)", "vs bound"
    );
    let mem = OnChipMemory::from_kib(66.5);
    for l in net.conv_layers() {
        let bound = clb::bound::dram_bound_bytes(&l.layer, mem) / 1e6;
        let ours = clb::dataflow::search_ours(&l.layer, mem)
            .traffic
            .total_bytes() as f64
            / 1e6;
        println!(
            "{:<14} {:>9.2} {:>6.1} {:>12.1} {:>12.1} {:>+9.1}%",
            l.name,
            l.layer.macs() as f64 / 1e9,
            l.layer.window_reuse(),
            bound,
            ours,
            (ours / bound - 1.0) * 100.0,
        );
    }

    // Forward and input-gradient passes execute directly on the
    // accelerator; the weight-gradient pass has an Ho×Wo sliding window
    // that exceeds any fixed IGBuf, so it needs a different blocking
    // (the planner reports this instead of guessing).
    let acc = Accelerator::implementation(1);
    for l in net.conv_layers() {
        match acc.analyze_layer(&l.name, &l.layer) {
            Ok(report) => println!(
                "\n{} on implementation 1: {:.1} MB DRAM, {:.2} pJ/MAC, {:.1} ms",
                l.name,
                report.stats.dram.total_bytes() as f64 / 1e6,
                report.pj_per_mac(),
                report.stats.seconds(acc.arch().core_freq_hz) * 1e3,
            ),
            Err(e) => println!("\n{} cannot run the Fig. 7 dataflow directly: {e}", l.name),
        }
    }
    println!(
        "\n(forward : dX : dW MAC split = 1 : 1 : 1 — every pass does {:.2} GMACs)",
        forward.macs() as f64 / 1e9
    );
    println!("\nnotes: the weight-gradient pass has a huge sliding window (Ho×Wo");
    println!("kernel), so its R — and with it the √(R·S) reduction in the bound —");
    println!("is far larger than the forward R = 9; but the same window exceeds");
    println!("the example architecture's IGBuf, and the Eq. 15 bound degenerates");
    println!("to the ideal (read-once) volume, which a 66.5 KB chip cannot reach");
    println!("(the paper notes the bound is not tight for such shapes).");
    Ok(())
}
